"""The BlueField2 case-study program (§5.3.1, Figure 11a).

"The program has a sequence of MA tables starting with eight tables for
regular packet processing, followed by two tables for load balancing,
and ending with two ACL tables."
"""

from __future__ import annotations

from repro.ir.actions import Param, drop_action, noop_action, prim
from repro.ir.actions import Action
from repro.ir.builder import ProgramBuilder
from repro.ir.entries import ExactValue, LpmValue, TableEntry
from repro.ir.program import Program
from repro.ir.tables import MatchType
from repro.nic.packet import ipv4

N_REGULAR = 8
LB_TABLES = ("lb_vip", "lb_backend")
ACL_TABLES = ("acl_stage1", "acl_stage2")

#: Virtual IP the load balancer serves.
VIP = ipv4(10, 200, 0, 1)


def build_program() -> Program:
    builder = ProgramBuilder("load_balancer")
    names: list[str] = []
    for i in range(N_REGULAR):
        name = f"proc{i}"
        # Half the regular processing tables use LPM keys: with the
        # usual multi-prefix rule sets those lookups cost several
        # memory accesses, which is what makes caching worthwhile.
        if i % 2 == 0:
            keys = [(f"ipv4.reg{i}", MatchType.LPM)]
        else:
            keys = [f"ipv4.reg{i}"]
        builder.table(
            name,
            keys,
            [noop_action(f"{name}_a0"), noop_action(f"{name}_a1")],
        )
        names.append(name)
    builder.table(
        "lb_vip",
        ["ipv4.dst"],
        [
            Action(
                "vip_hit",
                (prim("set_field", "meta.vip_id", Param(0)),),
            ),
            noop_action("vip_miss"),
        ],
        default_action="vip_miss",
        size=4096,
    )
    builder.table(
        "lb_backend",
        ["ipv4.dst", "l4.sport"],
        [
            Action(
                "pick_backend",
                (
                    prim("set_field", "ipv4.dst", Param(0)),
                    prim("set_field", "l4.dport", Param(1)),
                ),
            ),
            noop_action("no_backend"),
        ],
        default_action="no_backend",
        size=65536,
    )
    names.extend(LB_TABLES)
    for name, field in zip(ACL_TABLES, ("ipv4.tos", "l4.dport")):
        builder.table(
            name,
            [field],
            [drop_action(f"{name}_deny"), noop_action(f"{name}_permit")],
            default_action=f"{name}_permit",
            annotations={"role": "acl"},
        )
        names.append(name)
    builder.chain(names)
    return builder.build(root=names[0])


def install_base_entries(control_plane, n_backends: int = 16) -> None:
    # Multi-prefix-length rules in the LPM processing tables (m = 4).
    for i in range(0, N_REGULAR, 2):
        for p, prefix_len in enumerate((8, 16, 24, 32)):
            control_plane.insert_entry(
                f"proc{i}",
                TableEntry(
                    (LpmValue(ipv4(10 + p, 0, 0, 0), prefix_len),),
                    f"proc{i}_a0",
                ),
            )
    control_plane.insert_entry(
        "lb_vip", TableEntry((ExactValue(VIP),), "vip_hit", (1,))
    )
    for i in range(n_backends):
        control_plane.insert_entry(
            "lb_backend",
            TableEntry(
                (ExactValue(VIP), ExactValue(1024 + i)),
                "pick_backend",
                (ipv4(10, 0, 1, i + 1), 8080),
            ),
        )
    # ACL stage 1 denies a TOS class; stage 2 denies a port.
    control_plane.insert_entry(
        "acl_stage1",
        TableEntry((ExactValue(1),), "acl_stage1_deny"),
    )
    control_plane.insert_entry(
        "acl_stage2",
        TableEntry((ExactValue(6666),), "acl_stage2_deny"),
    )


def insertion_burst(
    control_plane, start_port: int, count: int
) -> None:
    """Insert ``count`` new backend mappings (the t=16s burst)."""
    for i in range(count):
        control_plane.insert_entry(
            "lb_backend",
            TableEntry(
                (ExactValue(VIP), ExactValue(start_port + i)),
                "pick_backend",
                (ipv4(10, 0, 2, (i % 250) + 1), 8080),
            ),
        )
