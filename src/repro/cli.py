"""Command-line interface: Pipeleon as a standalone tool.

Mirrors how the paper's prototype slots into a vendor toolchain: the
compiler's intermediate ``.json`` goes in, an optimized ``.json`` comes
out, optionally guided by a persisted runtime profile.

Subcommands:

* ``optimize``  — plan + apply; writes the optimized program JSON.
* ``inspect``   — print a program's layout, pipelets, and cost estimate.
* ``calibrate`` — run the §3.1 calibration suite against a target model
  and print the fitted constants.
* ``placement`` — hierarchical-memory placement (§6 extension).
* ``replay``    — drive generated traffic through the emulator's
  compiled fast path (``--jobs N`` shards it across N worker
  processes) and print a JSON throughput/latency summary. Telemetry
  surface: ``--trace`` (sampled packet tracing), ``--metrics-out``
  (Prometheus text), ``--events-out`` (JSONL event log),
  ``--profile-out`` (persist the merged runtime profile for
  ``optimize --profile``).
* ``report``    — run a traced replay and print the per-pipelet
  measured-vs-predicted latency table (cost-model validation).

Usage: ``python -m repro.cli <subcommand> ...``
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import (
    CostModel,
    Pipeleon,
    ResourceBudget,
    TierBudget,
    partition,
    profile_from_json,
    uniform_profile,
)
from repro.core.calibration import calibrate
from repro.core.search import SearchOptions
from repro.ir import dumps_program, loads_program
from repro.nic.targets import get_target


def _load_program(path: str):
    """Load either this project's format or raw p4c/BMv2 JSON."""
    from repro.ir.bmv2 import from_bmv2_json, looks_like_bmv2

    with open(path) as handle:
        data = json.load(handle)
    if looks_like_bmv2(data):
        return from_bmv2_json(data)
    from repro.ir import program_from_json

    return program_from_json(data)


def _load_profile(path: Optional[str], program):
    if path is None:
        return uniform_profile(program)
    with open(path) as handle:
        return profile_from_json(json.load(handle))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target",
        default="bluefield2",
        help="target model: bluefield2 | agilio_cx | emulated_nic",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="runtime profile JSON (default: uniform profile)",
    )


def cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args.input)
    profile = _load_profile(args.profile, program)
    target = get_target(args.target)
    budget = ResourceBudget(
        memory_bytes=args.memory_budget,
        update_pps=args.update_budget,
    )
    pipeleon = Pipeleon(
        target, budget=budget, search=SearchOptions(k=args.k)
    )
    plan = pipeleon.optimize(program, profile)
    optimized = pipeleon.apply(program, plan).program
    output = dumps_program(optimized)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        print(output)
    print(plan.describe(), file=sys.stderr)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    program = _load_program(args.input)
    profile = _load_profile(args.profile, program)
    target = get_target(args.target)
    model = CostModel.for_target(target)
    print(program.summary())
    pipelets = partition(program)
    print(f"\npipelets ({len(pipelets)}):")
    for pipelet in pipelets:
        marker = " [switch-case]" if pipelet.is_switch_case else ""
        print(
            f"  {pipelet.pipelet_id}: "
            f"{' -> '.join(pipelet.table_names)}{marker}"
        )
    latency = model.expected_latency(program, profile)
    print(f"\nexpected latency (cost model): {latency:.1f} ns")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    target = get_target(args.target)
    fitted = calibrate(target, n_packets=args.packets)
    print(
        f"Lmat={fitted.lmat:.6f}  Lact={fitted.lact:.6f}  "
        f"m_lpm={fitted.m_lpm:.2f}  m_ternary={fitted.m_ternary:.2f}"
    )
    return 0


def cmd_placement(args: argparse.Namespace) -> int:
    program = _load_program(args.input)
    profile = _load_profile(args.profile, program)
    target = get_target(args.target)
    pipeleon = Pipeleon(target)
    plan = pipeleon.optimize_placement(
        program,
        profile,
        TierBudget(
            imem_bytes=args.imem_bytes, lmem_bytes=args.lmem_bytes
        ),
    )
    placed = pipeleon.apply_placement(program, plan)
    output = dumps_program(placed)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        print(output)
    print(plan.describe(), file=sys.stderr)
    return 0


def _resolve_program(args: argparse.Namespace, command: str):
    """Resolve ``--app``/``--program`` into (program, install, label).

    Returns ``None`` (after printing the usage error) when the
    arguments don't name exactly one program source.
    """
    from repro.apps import EXAMPLE_APPS

    if (args.app is None) == (args.program is None):
        print(
            f"{command}: pass exactly one of --app or --program",
            file=sys.stderr,
        )
        return None
    if args.app is not None:
        try:
            build, install = EXAMPLE_APPS[args.app]
        except KeyError:
            print(
                f"{command}: unknown app {args.app!r} "
                f"(choose from {', '.join(sorted(EXAMPLE_APPS))})",
                file=sys.stderr,
            )
            return None
        return build(), install, args.app
    return _load_program(args.program), None, args.program


def _build_telemetry(args: argparse.Namespace):
    """The replay's Telemetry bundle, or None when every knob is off."""
    from repro.telemetry import Telemetry

    trace_interval = args.trace_interval if args.trace else 0
    if not (
        trace_interval or args.metrics_out or args.events_out
    ):
        return None
    return Telemetry(
        trace_interval=trace_interval, events_path=args.events_out
    )


def _export_metrics(
    registry, deployment, stats, target, jobs: int, label: str
) -> None:
    """Fill the registry from a finished replay's merged state."""
    from repro.telemetry import (
        export_cache_stats,
        export_columnar,
        export_counter_bank,
        export_emulator,
        export_run_stats,
        export_tracer,
    )

    export_run_stats(registry, stats, target, app=label)
    telemetry = getattr(deployment, "telemetry", None)
    if telemetry is not None:
        from repro.telemetry import export_event_log

        export_event_log(registry, telemetry.events)
    if jobs > 1:
        sharded = deployment.emulator
        export_counter_bank(registry, sharded.counters)
        for name, cache_stats in sharded.cache_stats.items():
            export_cache_stats(registry, name, cache_stats)
        if sharded.native_cache_stats is not None:
            export_cache_stats(
                registry, "__native__", sharded.native_cache_stats
            )
        export_columnar(
            registry,
            sharded.columnar_demotions,
            sharded.columnar_packets,
            sharded.columnar_partitions,
        )
    else:
        export_emulator(registry, deployment.emulator)
    tracer = deployment.tracer
    if tracer is not None:
        export_tracer(registry, tracer)


def cmd_replay(args: argparse.Namespace) -> int:
    import time

    from repro.core import Deployment, profile_to_json
    from repro.core.sharded import ShardedDeployment
    from repro.traffic.flows import synth_flows
    from repro.traffic.generator import TrafficGenerator

    resolved = _resolve_program(args, "replay")
    if resolved is None:
        return 2
    program, install, label = resolved
    target = get_target(args.target)

    fault_plan = None
    supervisor = None
    inject = getattr(args, "inject_fault", None)
    if inject:
        from repro.nic.faults import FaultPlan

        if args.jobs <= 1:
            print(
                "error: --inject-fault requires --jobs > 1 "
                "(faults target shard workers)",
                file=sys.stderr,
            )
            return 2
        fault_seed = (
            args.fault_seed
            if args.fault_seed is not None
            else args.seed
        )
        try:
            fault_plan = FaultPlan.from_args(inject, seed=fault_seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        max_shard = fault_plan.max_shard()
        if max_shard is not None and max_shard >= args.jobs:
            print(
                f"error: fault targets shard {max_shard} but only "
                f"{args.jobs} workers exist (--jobs)",
                file=sys.stderr,
            )
            return 2
    if args.jobs > 1:
        from repro.nic.sharding import SupervisorOptions

        supervisor = SupervisorOptions(
            recovery=args.recovery,
            recv_timeout_s=args.recv_timeout,
        )

    live_options = None
    live_requested = (
        args.serve_metrics is not None
        or args.slo
        or args.flight_out
        or args.live_interval is not None
        or args.live_every_packets is not None
    )
    if live_requested:
        if args.jobs <= 1:
            print(
                "error: the live telemetry plane (--serve-metrics/"
                "--slo/--flight-out/--live-*) requires --jobs > 1 "
                "(snapshots stream from shard workers)",
                file=sys.stderr,
            )
            return 2
        from repro.telemetry import LiveOptions, load_slo_rules

        rules = ()
        if args.slo:
            try:
                rules = load_slo_rules(args.slo)
            except (OSError, ValueError, KeyError) as exc:
                print(f"error: --slo: {exc}", file=sys.stderr)
                return 2
        try:
            live_options = LiveOptions(
                interval_s=(
                    args.live_interval
                    if args.live_interval is not None
                    else 1.0
                ),
                every_packets=args.live_every_packets,
                window=args.live_window,
                flight_path=args.flight_out,
                rules=rules,
                serve_port=args.serve_metrics,
            )
        except (TypeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    telemetry = _build_telemetry(args)
    if telemetry is None and live_options is not None:
        # SLO breach/clear events need an event log to land in.
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    if args.jobs > 1:
        deployment = ShardedDeployment(
            program,
            target,
            n_workers=args.jobs,
            batch=args.batch,
            telemetry=telemetry,
            supervisor=supervisor,
            fault_plan=fault_plan,
            transport=args.transport,
            engine=args.engine,
            live=live_options,
        )
    else:
        deployment = Deployment(
            program, target, telemetry=telemetry, engine=args.engine
        )
    try:
        if install is not None:
            install(deployment.control_plane)
        generator = TrafficGenerator(seed=args.seed)
        flows = synth_flows(args.flows)
        packets = generator.stream(
            flows, args.packets, locality=args.locality
        )
        start = time.perf_counter()
        stats = deployment.replay(
            packets, offered_pps=args.pps, batch=args.batch
        )
        wall_s = time.perf_counter() - start
        summary = {
            "app": label,
            "target": args.target,
            "jobs": args.jobs,
            "engine": args.engine,
            "packets": stats.packets,
            "dropped": stats.dropped,
            "mean_latency_ns": stats.mean_latency_ns,
            "wall_s": wall_s,
            "wall_pps": stats.packets / wall_s if wall_s > 0 else 0.0,
            "throughput_gbps": stats.throughput_gbps(target),
        }
        if args.engine in ("auto", "columnar"):
            demotions = (
                deployment.columnar_demotions
                if args.jobs > 1
                else deployment.emulator.columnar_demotions
            )
            summary["columnar_demotions"] = dict(demotions)
            summary["columnar_packets"] = (
                deployment.columnar_packets
                if args.jobs > 1
                else deployment.emulator.columnar_packets
            )
            summary["columnar_partitions"] = (
                deployment.columnar_partitions
                if args.jobs > 1
                else deployment.emulator.columnar_partitions
            )
        if args.jobs > 1:
            summary["transport"] = deployment.transport
            transport_totals = deployment.transport_stats()["totals"]
            summary["ring_stalls"] = transport_totals["stalls"]
            summary["pipe_fallbacks"] = (
                transport_totals["fallback_encoding"]
                + transport_totals["fallback_capacity"]
            )
            busy = deployment.emulator.worker_busy_s
            summary["worker_busy_s"] = busy
            critical = max(busy) if busy else 0.0
            # Modeled throughput under hardware flow dispatch (RSS):
            # the fleet finishes when its busiest worker does.
            summary["modeled_pps"] = (
                stats.packets / critical if critical > 0 else 0.0
            )
            emulator = deployment.emulator
            respawns = emulator.total_respawns
            if respawns:
                summary["respawns"] = respawns
            degraded = emulator.degraded_shards
            if degraded:
                summary["degraded_shards"] = degraded
                summary["lost_packets"] = stats.lost_packets
        live = getattr(deployment, "live", None)
        if live is not None:
            # Final flush: the last recorder row and the served
            # /metrics registry now reflect the finished replay (the
            # scrape endpoint stays up until deployment.close()).
            live.stop()
            watchdog = live.watchdog
            live_summary = {
                "rows": live.recorder.appended,
                "slo_rules": len(watchdog.rules),
                "slo_breaches": watchdog.breaches,
                "slo_clears": watchdog.clears,
                "slo_active": watchdog.active_breaches,
            }
            if args.flight_out:
                live_summary["flight_out"] = args.flight_out
            if deployment.live_server is not None:
                live_summary["metrics_port"] = (
                    deployment.live_server.port
                )
            summary["live"] = live_summary
        tracer = deployment.tracer
        if tracer is not None:
            summary["traced_packets"] = tracer.sampled
        if args.profile_out:
            profile = deployment.profile(
                offered_pps=args.pps if args.pps else 1e6
            )
            with open(args.profile_out, "w") as handle:
                json.dump(profile_to_json(profile), handle, indent=2)
            summary["profile_out"] = args.profile_out
        if telemetry is not None and args.metrics_out:
            _export_metrics(
                telemetry.registry, deployment, stats, target,
                args.jobs, label,
            )
            with open(args.metrics_out, "w") as handle:
                handle.write(telemetry.registry.to_prometheus())
            summary["metrics_out"] = args.metrics_out
        if telemetry is not None and args.events_out:
            summary["events_out"] = args.events_out
            summary["events_emitted"] = telemetry.events.emitted
        print(json.dumps(summary, indent=2))
    finally:
        # Always close, jobs==1 included: ShardedDeployment tears down
        # the live plane (server thread, aggregator, ports) and the
        # worker fleet via try/finally; Deployment.close is a cheap
        # listener detach. Exceptions mid-replay must not leak either.
        try:
            deployment.close()
        finally:
            if telemetry is not None:
                telemetry.close()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Refreshing terminal view of a flight-recorder JSONL file.

    Follows the file like ``top``: each frame re-reads the recorder
    (replays append rows live) and renders the latest interval row
    plus the per-shard table. ``--iterations N`` renders N frames and
    exits (used by tests and one-shot inspection); the default runs
    until Ctrl-C.
    """
    import time

    from repro.telemetry import FlightRecorder, render_top

    frames = 0
    try:
        while True:
            try:
                with open(args.recorder) as handle:
                    rows = FlightRecorder.parse_jsonl(handle.read())
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            frame = render_top(rows, path=args.recorder)
            if not args.no_clear:
                # ANSI clear + home, like watch(1); falls back to
                # plain appends under --no-clear for dumb terminals.
                sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(frame)
            sys.stdout.flush()
            frames += 1
            if args.iterations is not None and frames >= args.iterations:
                return 0
            time.sleep(args.refresh)
    except KeyboardInterrupt:
        return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core import Deployment
    from repro.telemetry import Telemetry
    from repro.telemetry.report import (
        columnar_kernel_report,
        format_kernel_report,
        format_report,
        measured_vs_predicted,
    )
    from repro.traffic.flows import synth_flows
    from repro.traffic.generator import TrafficGenerator

    resolved = _resolve_program(args, "report")
    if resolved is None:
        return 2
    program, install, label = resolved
    target = get_target(args.target)
    telemetry = Telemetry(trace_interval=args.trace_interval)
    deployment = Deployment(program, target, telemetry=telemetry)
    if install is not None:
        install(deployment.control_plane)
    generator = TrafficGenerator(seed=args.seed)
    flows = synth_flows(args.flows)
    packets = generator.stream(
        flows, args.packets, locality=args.locality
    )
    deployment.replay(packets)
    profile = deployment.profile()
    model = CostModel.for_target(target)
    report = measured_vs_predicted(
        deployment.program, profile, model, deployment.tracer
    )
    print(f"measured vs predicted per-pipelet latency — {label}")
    print(
        f"(traced 1-in-{args.trace_interval} of "
        f"{deployment.tracer.seen} packets)\n"
    )
    print(format_report(report))
    # Second angle on the same question: replay the identical traffic
    # through the columnar batch kernels (untraced twin — a tracer
    # forces whole-batch demotion) and line per-node kernel wall time
    # up against the cost model's per-node charges.
    resolved = _resolve_program(args, "report")
    program2, install2, _ = resolved
    twin = Deployment(program2, target, engine="columnar")
    if install2 is not None:
        install2(twin.control_plane)
    twin.replay(
        TrafficGenerator(seed=args.seed).stream(
            flows, args.packets, locality=args.locality
        )
    )
    kernels = columnar_kernel_report(twin.emulator)
    print("\ncolumnar kernel time vs cost-model share (untraced twin)\n")
    print(format_kernel_report(kernels))
    if args.json_out:
        payload = report.to_json()
        payload["columnar_kernels"] = kernels.to_json()
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2)
    return 0


def cmd_dse(args: argparse.Namespace) -> int:
    from repro.dse import (
        SweepSpec,
        enumerate_cells,
        pareto_front,
        preset_spec,
        run_sweep,
    )
    from repro.telemetry.report import (
        dse_ranking_report,
        format_dse_report,
    )

    if args.spec:
        spec = SweepSpec.load(args.spec)
        if args.seed is not None:
            spec = spec.with_seed(args.seed)
    else:
        spec = preset_spec(args.preset, seed=args.seed or 0)

    overrides = {}
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.packets is not None:
        overrides["packets"] = args.packets
    if overrides:
        # Base-level overrides: a declared axis of the same name still
        # wins (axes override base by construction).
        spec = SweepSpec(
            name=spec.name,
            seed=spec.seed,
            axes=spec.axes,
            base={**dict(spec.base), **overrides},
            exclude=spec.exclude,
        )

    if args.list:
        for cell in enumerate_cells(spec):
            print(
                json.dumps(
                    {
                        "cell": cell.index,
                        "fingerprint": cell.fingerprint,
                        "seed": cell.seed,
                        "config": cell.config,
                    },
                    sort_keys=True,
                )
            )
        return 0

    total = len(enumerate_cells(spec))

    def progress(record: dict) -> None:
        print(
            f"[cell {record['cell'] + 1}/{total}] "
            f"{record['fingerprint']} "
            f"{record['config']['app']}/{record['config']['target']} "
            f"mean={record['measured']['mean_latency_ns']:.1f}ns "
            f"wall={record['wall']['wall_s']:.2f}s",
            file=sys.stderr,
        )

    result = run_sweep(
        spec,
        args.db,
        pool=args.pool,
        max_cells=args.max_cells,
        progress=progress,
    )
    ranking = dse_ranking_report(result.records)
    print(format_dse_report(ranking), file=sys.stderr)
    front, dominated = pareto_front(result.records)

    def brief(record: dict) -> dict:
        return {
            "cell": record["cell"],
            "fingerprint": record["fingerprint"],
            "app": record["config"]["app"],
            "target": record["config"]["target"],
            "mean_latency_ns": record["measured"]["mean_latency_ns"],
            "predicted_memory_bytes": record["predicted"]["memory_bytes"],
            "predicted_update_pps": record["predicted"]["update_pps"],
        }

    summary = {
        "spec": spec.name,
        "seed": spec.seed,
        "db": str(result.db_path),
        "cells": total,
        "executed": result.executed,
        "skipped": result.skipped,
        "remaining": result.remaining,
        "complete": result.complete,
        "pareto_front": [brief(record) for record in front],
        "dominated": len(dominated),
        "spearman": ranking.spearman,
    }
    if args.bench_out:
        with open(args.bench_out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        summary["bench_out"] = args.bench_out
    print(json.dumps(summary, indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on adaptation service (ROADMAP item 5).

    Stands up one supervised sharded fleet + controller + daemon-
    lifetime live telemetry plane, prints a ``ready`` JSON line, and
    serves replay/optimize/report/status jobs over an AF_UNIX socket
    until a ``drain``/``shutdown`` op or SIGTERM. Exit code 0 means
    the drain quiesced cleanly (no leaked workers or server threads).
    """
    import asyncio

    from repro.service import ServeSession, ServiceDaemon, SessionConfig

    try:
        config = SessionConfig(
            app=args.app,
            target=args.target,
            jobs=args.jobs,
            transport=args.transport,
            engine=args.engine,
            recovery=args.recovery,
            recv_timeout_s=args.recv_timeout,
            faults=tuple(args.inject_fault or ()),
            fault_seed=str(
                args.fault_seed if args.fault_seed is not None else 0
            ),
            profile_period_s=args.profile_period,
            replan_margin=args.replan_margin,
            controller_enabled=not args.no_adapt,
            live_interval_s=(
                args.live_interval
                if args.live_interval is not None
                else 0.05
            ),
            live_every_packets=args.live_every_packets,
            flight_path=args.flight_out,
            slo_rules_path=args.slo,
            serve_metrics_port=args.serve_metrics,
            default_packets_per_tick=args.packets_per_tick,
        )
        session = ServeSession(config)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon = ServiceDaemon(session, args.socket)
    try:
        asyncio.run(daemon.serve())
    except KeyboardInterrupt:
        pass
    finally:
        # Belt and braces: serve() normally closes the session during
        # drain; a crashed event loop must not leak the fleet.
        session.close()
    return 0 if daemon.drained_cleanly else 1


def cmd_call(args: argparse.Namespace) -> int:
    """One-shot client for a running serve daemon."""
    from repro.service import ServiceClient, ServiceError

    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        print(f"error: --params: {exc}", file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("error: --params must be a JSON object", file=sys.stderr)
        return 2
    try:
        with ServiceClient(
            args.socket, timeout_s=args.timeout
        ) as client:
            result = client.request(args.op, params)
            if (
                args.wait
                and args.op == "submit"
                and "job_id" in result
            ):
                result = client.wait(
                    result["job_id"], timeout_s=args.timeout
                )
    except (OSError, ConnectionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pipeleon",
        description="Profile-guided P4 optimization for SmartNICs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    optimize = subparsers.add_parser(
        "optimize", help="optimize a program JSON"
    )
    optimize.add_argument("input")
    optimize.add_argument("-o", "--output", default=None)
    optimize.add_argument("--k", type=float, default=0.2)
    optimize.add_argument(
        "--memory-budget", type=float, default=float("inf")
    )
    optimize.add_argument(
        "--update-budget", type=float, default=float("inf")
    )
    _add_common(optimize)
    optimize.set_defaults(func=cmd_optimize)

    inspect = subparsers.add_parser(
        "inspect", help="show layout, pipelets, and cost estimate"
    )
    inspect.add_argument("input")
    _add_common(inspect)
    inspect.set_defaults(func=cmd_inspect)

    calibrate_cmd = subparsers.add_parser(
        "calibrate", help="fit Lmat/Lact/m against a target model"
    )
    calibrate_cmd.add_argument("--packets", type=int, default=120)
    _add_common(calibrate_cmd)
    calibrate_cmd.set_defaults(func=cmd_calibrate)

    placement = subparsers.add_parser(
        "placement", help="hierarchical memory placement (§6)"
    )
    placement.add_argument("input")
    placement.add_argument("-o", "--output", default=None)
    placement.add_argument("--imem-bytes", type=float, default=0.0)
    placement.add_argument("--lmem-bytes", type=float, default=0.0)
    _add_common(placement)
    placement.set_defaults(func=cmd_placement)

    replay = subparsers.add_parser(
        "replay",
        help="replay generated traffic through the fast path "
        "(--jobs N for the sharded multi-core engine)",
    )
    replay.add_argument(
        "--app",
        default=None,
        help="example app name (see repro.apps.EXAMPLE_APPS)",
    )
    replay.add_argument(
        "--program",
        default=None,
        help="program JSON path (alternative to --app)",
    )
    replay.add_argument("--packets", type=int, default=20000)
    replay.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 = in-process fast path",
    )
    replay.add_argument(
        "--transport",
        choices=("shm", "pipe"),
        default="shm",
        help="sharded data-plane transport: shm (zero-copy "
        "shared-memory rings, default) or pipe (pickled batches "
        "through the command pipe)",
    )
    replay.add_argument("--flows", type=int, default=256)
    replay.add_argument(
        "--locality",
        default="uniform",
        help="uniform | zipf | round_robin",
    )
    replay.add_argument(
        "--pps",
        type=float,
        default=None,
        help="offered load driving the emulated clock",
    )
    replay.add_argument("--batch", type=int, default=256)
    replay.add_argument(
        "--engine",
        choices=("auto", "columnar", "fastpath", "interp"),
        default="auto",
        help="execution tier: auto (columnar batch kernels with "
        "closure-tier demotion, default), columnar, fastpath "
        "(compiled per-packet closures) or interp (reference "
        "interpreter); all tiers are stats-identical",
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--trace",
        action="store_true",
        help="enable 1-in-N sampled packet tracing",
    )
    replay.add_argument(
        "--trace-interval",
        type=int,
        default=64,
        help="trace every Nth packet (with --trace)",
    )
    replay.add_argument(
        "--metrics-out",
        default=None,
        help="write Prometheus text exposition to this path",
    )
    replay.add_argument(
        "--events-out",
        default=None,
        help="write the JSONL event log to this path",
    )
    replay.add_argument(
        "--profile-out",
        default=None,
        help="persist the merged runtime profile JSON "
        "(feed back into `optimize --profile`)",
    )
    replay.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="scripted worker fault, e.g. kill:shard=0,batch=3 "
        "(kinds: kill|hang|delay|drop_reply; repeatable; "
        "requires --jobs > 1)",
    )
    replay.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for auto-placed fault triggers "
        "(default: --seed)",
    )
    replay.add_argument(
        "--recovery",
        choices=("fail", "respawn", "degraded"),
        default="fail",
        help="worker-failure policy: fail (raise), respawn "
        "(rebuild the shard and replay its journal), degraded "
        "(survivors absorb the lost shard's flows)",
    )
    replay.add_argument(
        "--recv-timeout",
        type=float,
        default=60.0,
        help="seconds before an unresponsive worker is declared "
        "hung",
    )
    replay.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live /metrics (Prometheus text) and /health "
        "on this port during the replay (0 = ephemeral; "
        "requires --jobs > 1)",
    )
    replay.add_argument(
        "--slo",
        default=None,
        metavar="RULES_JSON",
        help="SLO rule file evaluated each live interval; breaches "
        "emit slo_breach/slo_clear events (requires --jobs > 1)",
    )
    replay.add_argument(
        "--flight-out",
        default=None,
        metavar="PATH",
        help="append flight-recorder rows (one JSON object per "
        "interval) to this file; view with `repro top PATH`",
    )
    replay.add_argument(
        "--live-interval",
        type=float,
        default=None,
        metavar="S",
        help="live snapshot/aggregation cadence in wall seconds "
        "(default 1.0 when the live plane is on)",
    )
    replay.add_argument(
        "--live-every-packets",
        type=int,
        default=None,
        metavar="N",
        help="deterministic snapshot cadence: one per-shard "
        "snapshot every N replayed packets (bit-stable recorder "
        "rows; replaces the wall cadence for workers)",
    )
    replay.add_argument(
        "--live-window",
        type=int,
        default=512,
        help="flight-recorder in-memory row window",
    )
    _add_common(replay)
    replay.set_defaults(func=cmd_replay)

    top = subparsers.add_parser(
        "top",
        help="refreshing terminal view of a flight-recorder JSONL "
        "(written by replay --flight-out)",
    )
    top.add_argument(
        "recorder",
        help="flight-recorder JSONL path (replay --flight-out)",
    )
    top.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        help="seconds between frames",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render N frames then exit (default: until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="print frames without clearing the screen",
    )
    top.set_defaults(func=cmd_top)

    report = subparsers.add_parser(
        "report",
        help="traced replay + measured-vs-predicted latency table",
    )
    report.add_argument(
        "--app",
        default=None,
        help="example app name (see repro.apps.EXAMPLE_APPS)",
    )
    report.add_argument(
        "--program",
        default=None,
        help="program JSON path (alternative to --app)",
    )
    report.add_argument("--packets", type=int, default=20000)
    report.add_argument("--flows", type=int, default=256)
    report.add_argument(
        "--locality",
        default="uniform",
        help="uniform | zipf | round_robin",
    )
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--trace-interval",
        type=int,
        default=16,
        help="trace every Nth packet",
    )
    report.add_argument(
        "--json-out",
        default=None,
        help="also write the report as JSON to this path",
    )
    _add_common(report)
    report.set_defaults(func=cmd_report)

    dse = subparsers.add_parser(
        "dse",
        help=(
            "design-space exploration: sweep a config matrix into a "
            "resumable run database, report Pareto fronts"
        ),
    )
    dse.add_argument(
        "--spec",
        default=None,
        help="sweep spec JSON (see repro.dse.SweepSpec.to_json)",
    )
    dse.add_argument(
        "--preset",
        default="smoke",
        choices=["smoke", "pareto"],
        help="built-in spec when --spec is not given",
    )
    dse.add_argument(
        "--db",
        default="dse_runs.jsonl",
        help="append-only JSONL run database (resumes if it exists)",
    )
    dse.add_argument(
        "--seed",
        type=int,
        default=None,
        help="sweep seed (overrides the spec's)",
    )
    dse.add_argument(
        "--pool",
        type=int,
        default=1,
        help="process-pool width for parallel cells",
    )
    dse.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="run at most N new cells this invocation (kill stand-in)",
    )
    dse.add_argument(
        "--engine",
        default=None,
        help="base-config engine override (a declared axis still wins)",
    )
    dse.add_argument(
        "--jobs", type=int, default=None, help="base-config jobs override"
    )
    dse.add_argument(
        "--packets",
        type=int,
        default=None,
        help="base-config packets-per-cell override",
    )
    dse.add_argument(
        "--list",
        action="store_true",
        help="print the enumerated cells (JSONL) without running",
    )
    dse.add_argument(
        "--bench-out",
        default=None,
        help="also write the JSON summary to this path",
    )
    dse.set_defaults(func=cmd_dse)

    serve = subparsers.add_parser(
        "serve",
        help="always-on adaptation service: supervised fleet + "
        "controller + live telemetry behind an AF_UNIX job socket",
    )
    serve.add_argument(
        "--socket",
        required=True,
        help="AF_UNIX socket path to listen on",
    )
    serve.add_argument(
        "--app",
        default="l2l3_acl",
        help="example app name (see repro.apps.EXAMPLE_APPS)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="shard worker processes (must be >= 2)",
    )
    serve.add_argument(
        "--transport", choices=("shm", "pipe"), default="shm"
    )
    serve.add_argument(
        "--engine",
        choices=("auto", "columnar", "fastpath", "interp"),
        default="auto",
    )
    serve.add_argument(
        "--recovery",
        choices=("fail", "respawn", "degraded"),
        default="respawn",
        help="worker-failure policy (default respawn: the service "
        "must survive chaos)",
    )
    serve.add_argument("--recv-timeout", type=float, default=60.0)
    serve.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="scripted worker fault armed on the first fleet, e.g. "
        "kill:shard=0,batch=3 (repeatable)",
    )
    serve.add_argument("--fault-seed", type=int, default=None)
    serve.add_argument(
        "--profile-period",
        type=float,
        default=5.0,
        help="controller re-profiling period in emulated seconds",
    )
    serve.add_argument("--replan-margin", type=float, default=0.1)
    serve.add_argument(
        "--no-adapt",
        action="store_true",
        help="disable the controller loop (replay only)",
    )
    serve.add_argument(
        "--packets-per-tick",
        type=int,
        default=300,
        help="default packets per emulated second for replay jobs",
    )
    serve.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live /metrics + /health for the daemon's whole "
        "lifetime (0 = ephemeral; port printed on the ready line)",
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="RULES_JSON",
        help="SLO rule file; breaches schedule re-optimizations",
    )
    serve.add_argument(
        "--flight-out",
        default=None,
        metavar="PATH",
        help="append flight-recorder rows across every job",
    )
    serve.add_argument(
        "--live-interval",
        type=float,
        default=None,
        metavar="S",
        help="live snapshot/aggregation cadence (default 0.05s)",
    )
    serve.add_argument(
        "--live-every-packets",
        type=int,
        default=None,
        metavar="N",
        help="deterministic snapshot cadence (replaces wall cadence)",
    )
    _add_common(serve)
    serve.set_defaults(func=cmd_serve)

    call = subparsers.add_parser(
        "call",
        help="send one op to a running serve daemon and print the "
        "JSON result",
    )
    call.add_argument("--socket", required=True)
    call.add_argument(
        "op",
        help="protocol op: ping | status | scenarios | submit | job "
        "| wait | cancel | drain | shutdown",
    )
    call.add_argument(
        "--params",
        default=None,
        help='op params as a JSON object, e.g. \'{"op": "replay", '
        '"params": {"scenario": "flash_crowd", "seed": "7"}}\'',
    )
    call.add_argument(
        "--wait",
        action="store_true",
        help="after submit, block until the job settles and print "
        "its final state",
    )
    call.add_argument("--timeout", type=float, default=300.0)
    call.set_defaults(func=cmd_call)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
