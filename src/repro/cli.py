"""Command-line interface: Pipeleon as a standalone tool.

Mirrors how the paper's prototype slots into a vendor toolchain: the
compiler's intermediate ``.json`` goes in, an optimized ``.json`` comes
out, optionally guided by a persisted runtime profile.

Subcommands:

* ``optimize``  — plan + apply; writes the optimized program JSON.
* ``inspect``   — print a program's layout, pipelets, and cost estimate.
* ``calibrate`` — run the §3.1 calibration suite against a target model
  and print the fitted constants.
* ``placement`` — hierarchical-memory placement (§6 extension).
* ``replay``    — drive generated traffic through the emulator's
  compiled fast path (``--jobs N`` shards it across N worker
  processes) and print a JSON throughput/latency summary.

Usage: ``python -m repro.cli <subcommand> ...``
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import (
    CostModel,
    Pipeleon,
    ResourceBudget,
    TierBudget,
    partition,
    profile_from_json,
    uniform_profile,
)
from repro.core.calibration import calibrate
from repro.core.search import SearchOptions
from repro.ir import dumps_program, loads_program
from repro.nic.targets import get_target


def _load_program(path: str):
    """Load either this project's format or raw p4c/BMv2 JSON."""
    from repro.ir.bmv2 import from_bmv2_json, looks_like_bmv2

    with open(path) as handle:
        data = json.load(handle)
    if looks_like_bmv2(data):
        return from_bmv2_json(data)
    from repro.ir import program_from_json

    return program_from_json(data)


def _load_profile(path: Optional[str], program):
    if path is None:
        return uniform_profile(program)
    with open(path) as handle:
        return profile_from_json(json.load(handle))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target",
        default="bluefield2",
        help="target model: bluefield2 | agilio_cx | emulated_nic",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="runtime profile JSON (default: uniform profile)",
    )


def cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args.input)
    profile = _load_profile(args.profile, program)
    target = get_target(args.target)
    budget = ResourceBudget(
        memory_bytes=args.memory_budget,
        update_pps=args.update_budget,
    )
    pipeleon = Pipeleon(
        target, budget=budget, search=SearchOptions(k=args.k)
    )
    plan = pipeleon.optimize(program, profile)
    optimized = pipeleon.apply(program, plan).program
    output = dumps_program(optimized)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        print(output)
    print(plan.describe(), file=sys.stderr)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    program = _load_program(args.input)
    profile = _load_profile(args.profile, program)
    target = get_target(args.target)
    model = CostModel.for_target(target)
    print(program.summary())
    pipelets = partition(program)
    print(f"\npipelets ({len(pipelets)}):")
    for pipelet in pipelets:
        marker = " [switch-case]" if pipelet.is_switch_case else ""
        print(
            f"  {pipelet.pipelet_id}: "
            f"{' -> '.join(pipelet.table_names)}{marker}"
        )
    latency = model.expected_latency(program, profile)
    print(f"\nexpected latency (cost model): {latency:.1f} ns")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    target = get_target(args.target)
    fitted = calibrate(target, n_packets=args.packets)
    print(
        f"Lmat={fitted.lmat:.6f}  Lact={fitted.lact:.6f}  "
        f"m_lpm={fitted.m_lpm:.2f}  m_ternary={fitted.m_ternary:.2f}"
    )
    return 0


def cmd_placement(args: argparse.Namespace) -> int:
    program = _load_program(args.input)
    profile = _load_profile(args.profile, program)
    target = get_target(args.target)
    pipeleon = Pipeleon(target)
    plan = pipeleon.optimize_placement(
        program,
        profile,
        TierBudget(
            imem_bytes=args.imem_bytes, lmem_bytes=args.lmem_bytes
        ),
    )
    placed = pipeleon.apply_placement(program, plan)
    output = dumps_program(placed)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        print(output)
    print(plan.describe(), file=sys.stderr)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    import time

    from repro.apps import EXAMPLE_APPS
    from repro.core import Deployment
    from repro.core.sharded import ShardedDeployment
    from repro.traffic.flows import synth_flows
    from repro.traffic.generator import TrafficGenerator

    if (args.app is None) == (args.program is None):
        print(
            "replay: pass exactly one of --app or --program",
            file=sys.stderr,
        )
        return 2
    install = None
    if args.app is not None:
        try:
            build, install = EXAMPLE_APPS[args.app]
        except KeyError:
            print(
                f"replay: unknown app {args.app!r} "
                f"(choose from {', '.join(sorted(EXAMPLE_APPS))})",
                file=sys.stderr,
            )
            return 2
        program = build()
    else:
        program = _load_program(args.program)
    target = get_target(args.target)
    if args.jobs > 1:
        deployment = ShardedDeployment(
            program, target, n_workers=args.jobs, batch=args.batch
        )
    else:
        deployment = Deployment(program, target)
    try:
        if install is not None:
            install(deployment.control_plane)
        generator = TrafficGenerator(seed=args.seed)
        flows = synth_flows(args.flows)
        packets = generator.stream(
            flows, args.packets, locality=args.locality
        )
        start = time.perf_counter()
        stats = deployment.replay(
            packets, offered_pps=args.pps, batch=args.batch
        )
        wall_s = time.perf_counter() - start
        summary = {
            "app": args.app or args.program,
            "target": args.target,
            "jobs": args.jobs,
            "packets": stats.packets,
            "dropped": stats.dropped,
            "mean_latency_ns": stats.mean_latency_ns,
            "wall_s": wall_s,
            "wall_pps": stats.packets / wall_s if wall_s > 0 else 0.0,
            "throughput_gbps": stats.throughput_gbps(target),
        }
        if args.jobs > 1:
            busy = deployment.emulator.worker_busy_s
            summary["worker_busy_s"] = busy
            critical = max(busy) if busy else 0.0
            # Modeled throughput under hardware flow dispatch (RSS):
            # the fleet finishes when its busiest worker does.
            summary["modeled_pps"] = (
                stats.packets / critical if critical > 0 else 0.0
            )
        print(json.dumps(summary, indent=2))
    finally:
        if args.jobs > 1:
            deployment.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pipeleon",
        description="Profile-guided P4 optimization for SmartNICs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    optimize = subparsers.add_parser(
        "optimize", help="optimize a program JSON"
    )
    optimize.add_argument("input")
    optimize.add_argument("-o", "--output", default=None)
    optimize.add_argument("--k", type=float, default=0.2)
    optimize.add_argument(
        "--memory-budget", type=float, default=float("inf")
    )
    optimize.add_argument(
        "--update-budget", type=float, default=float("inf")
    )
    _add_common(optimize)
    optimize.set_defaults(func=cmd_optimize)

    inspect = subparsers.add_parser(
        "inspect", help="show layout, pipelets, and cost estimate"
    )
    inspect.add_argument("input")
    _add_common(inspect)
    inspect.set_defaults(func=cmd_inspect)

    calibrate_cmd = subparsers.add_parser(
        "calibrate", help="fit Lmat/Lact/m against a target model"
    )
    calibrate_cmd.add_argument("--packets", type=int, default=120)
    _add_common(calibrate_cmd)
    calibrate_cmd.set_defaults(func=cmd_calibrate)

    placement = subparsers.add_parser(
        "placement", help="hierarchical memory placement (§6)"
    )
    placement.add_argument("input")
    placement.add_argument("-o", "--output", default=None)
    placement.add_argument("--imem-bytes", type=float, default=0.0)
    placement.add_argument("--lmem-bytes", type=float, default=0.0)
    _add_common(placement)
    placement.set_defaults(func=cmd_placement)

    replay = subparsers.add_parser(
        "replay",
        help="replay generated traffic through the fast path "
        "(--jobs N for the sharded multi-core engine)",
    )
    replay.add_argument(
        "--app",
        default=None,
        help="example app name (see repro.apps.EXAMPLE_APPS)",
    )
    replay.add_argument(
        "--program",
        default=None,
        help="program JSON path (alternative to --app)",
    )
    replay.add_argument("--packets", type=int, default=20000)
    replay.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 = in-process fast path",
    )
    replay.add_argument("--flows", type=int, default=256)
    replay.add_argument(
        "--locality",
        default="uniform",
        help="uniform | zipf | round_robin",
    )
    replay.add_argument(
        "--pps",
        type=float,
        default=None,
        help="offered load driving the emulated clock",
    )
    replay.add_argument("--batch", type=int, default=256)
    replay.add_argument("--seed", type=int, default=0)
    _add_common(replay)
    replay.set_defaults(func=cmd_replay)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
