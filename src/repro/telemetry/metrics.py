"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability subsystem. It is
*mergeable* exactly like :class:`~repro.nic.stats.RunStats` — a sharded
replay collects one registry per worker and folds them with
:meth:`MetricsRegistry.merge` into the registry a single-core run would
have produced — and exportable in two formats:

* Prometheus text exposition (``to_prometheus``), so a run's metrics
  drop straight into any scrape-based pipeline, and
* plain JSON (``to_json``), for the benchmark suite and tests.

Histograms use **fixed log-spaced buckets** (powers of two over the
latency range the emulator produces). Fixed buckets are what make the
histograms mergeable: any two histograms of the same metric share bucket
boundaries by construction, so a merge is an element-wise sum.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Optional

#: Log-spaced (base 2) latency buckets in nanoseconds: 16 ns .. ~1.05 ms.
#: Fixed once so per-shard histograms always merge element-wise.
LATENCY_BUCKETS_NS: tuple[float, ...] = tuple(
    float(2**exp) for exp in range(4, 21)
)

_TYPES = ("counter", "gauge", "histogram")


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_series(name: str, key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return name
    labels = ",".join(
        f'{label}="{_escape_label(value)}"' for label, value in key
    )
    return f"{name}{{{labels}}}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class Histogram:
    """Fixed-bucket histogram with a sum and a count.

    ``counts[i]`` holds observations in ``(buckets[i-1], buckets[i]]``;
    the final slot is the overflow (``+Inf``) bucket. Cumulative
    Prometheus ``le`` counts are derived at export time.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS_NS):
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("Histogram buckets must be sorted and unique")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the hit bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")

    def merge(self, other: "Histogram") -> "Histogram":
        if other.buckets != self.buckets:
            raise ValueError(
                "Cannot merge histograms with different buckets"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.sum += other.sum
        self.count += other.count
        return self

    def to_json(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _Family:
    """One named metric: a type, help text, and labelled series."""

    __slots__ = ("name", "type", "help", "series")

    def __init__(self, name: str, metric_type: str, help_text: str):
        self.name = name
        self.type = metric_type
        self.help = help_text
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Named counters/gauges/histograms with labels, merge and export."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def __len__(self) -> int:
        return len(self._families)

    def _family(
        self, name: str, metric_type: str, help_text: str
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(
                name, metric_type, help_text
            )
        elif family.type != metric_type:
            raise ValueError(
                f"Metric {name!r} is a {family.type}, not a {metric_type}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    # -- writes ------------------------------------------------------------

    def inc(
        self,
        name: str,
        value: float = 1.0,
        help: str = "",
        **labels: object,
    ) -> None:
        if value < 0:
            raise ValueError("Counters only go up")
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        family.series[key] = family.series.get(key, 0.0) + value

    def set_gauge(
        self, name: str, value: float, help: str = "", **labels: object
    ) -> None:
        family = self._family(name, "gauge", help)
        family.series[_label_key(labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> None:
        self.histogram(
            name, help=help, buckets=buckets, **labels
        ).observe(value)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        """The (created-on-demand) histogram behind a series."""
        family = self._family(name, "histogram", help)
        key = _label_key(labels)
        hist = family.series.get(key)
        if hist is None:
            hist = family.series[key] = Histogram(
                buckets if buckets is not None else LATENCY_BUCKETS_NS
            )
        return hist

    # -- reads -------------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        family = self._families.get(name)
        if family is None:
            return 0.0
        found = family.series.get(_label_key(labels))
        if found is None:
            return 0.0
        if isinstance(found, Histogram):
            raise ValueError(f"Metric {name!r} is a histogram; no value")
        return float(found)

    def names(self) -> list[str]:
        return sorted(self._families)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (associative, shard-merge safe).

        Counters and histograms add; gauges are last-observation-wins
        per series, which for the shard case (every worker reports the
        same control-plane-authoritative value) is the right fold.
        """
        for name, theirs in other._families.items():
            mine = self._family(name, theirs.type, theirs.help)
            for key, value in theirs.series.items():
                if theirs.type == "counter":
                    mine.series[key] = mine.series.get(key, 0.0) + value
                elif theirs.type == "gauge":
                    mine.series[key] = value
                else:
                    hist = mine.series.get(key)
                    if hist is None:
                        hist = mine.series[key] = Histogram(value.buckets)
                    hist.merge(value)
        return self

    def reset(self) -> None:
        self._families.clear()

    # -- export ------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.type}")
            for key in sorted(family.series):
                value = family.series[key]
                if isinstance(value, Histogram):
                    cumulative = 0
                    for bound, bucket_count in zip(
                        value.buckets, value.counts
                    ):
                        cumulative += bucket_count
                        series = _format_series(
                            f"{name}_bucket",
                            key + (("le", _format_value(bound)),),
                        )
                        lines.append(f"{series} {cumulative}")
                    series = _format_series(
                        f"{name}_bucket", key + (("le", "+Inf"),)
                    )
                    lines.append(f"{series} {value.count}")
                    lines.append(
                        f"{_format_series(f'{name}_sum', key)} "
                        f"{_format_value(value.sum)}"
                    )
                    lines.append(
                        f"{_format_series(f'{name}_count', key)} "
                        f"{value.count}"
                    )
                else:
                    lines.append(
                        f"{_format_series(name, key)} "
                        f"{_format_value(float(value))}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> dict:
        out: dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.series):
                value = family.series[key]
                entry: dict = {"labels": dict(key)}
                if isinstance(value, Histogram):
                    entry.update(value.to_json())
                else:
                    entry["value"] = value
                series.append(entry)
            out[name] = {
                "type": family.type,
                "help": family.help,
                "series": series,
            }
        return out
