"""Structured decision/event log: JSONL ring buffer + optional file sink.

Every control-plane mutation and every controller decision (profile
collected, replan accepted/rejected with its hysteresis margin, cache
dropped, merge reversed, redeploy, cache flush) lands here as one flat
JSON object with an **emulated-clock** timestamp, so a run's decision
history can be replayed against its traffic timeline.

The in-memory view is a bounded ring (old events fall off); the optional
file sink writes every event append-only as JSON Lines, so long runs
keep a complete on-disk history even after the ring rotates.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable, Optional

from repro.nic.control_plane import SimClock, UpdateEvent


class EventLog:
    """Bounded structured event recorder with emulated timestamps."""

    def __init__(
        self,
        capacity: int = 4096,
        clock: Optional[SimClock] = None,
        sink_path: Optional[str] = None,
        source: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock
        #: Optional origin stamp (e.g. ``"shard-3"``) written into every
        #: emitted event; disambiguates events that collide on
        #: ``(ts_s, seq)`` when logs from several emitters are merged.
        self.source = source
        #: Total events ever emitted (the ring may have rotated).
        self.emitted = 0
        #: Sink writes that failed (disk full, revoked fd). Failures
        #: are counted, not raised: a dying sink must never take the
        #: replay down, but it must be visible in exported metrics.
        self.sink_failures = 0
        self._events: deque[dict] = deque(maxlen=capacity)
        self._sink: Optional[IO[str]] = None
        self._observed_planes: set[int] = set()
        if sink_path is not None:
            self.open_sink(sink_path)

    # -- sink lifecycle ----------------------------------------------------

    def open_sink(self, path: str) -> None:
        """Start (or switch) the append-only JSONL file sink."""
        self.close()
        self._sink = open(path, "a")

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> dict:
        """Record one event; returns the event dict."""
        event = {
            "seq": self.emitted,
            "ts_s": self.clock.now_s if self.clock is not None else 0.0,
            "kind": kind,
        }
        if self.source is not None:
            event["source"] = self.source
        event.update(fields)
        self.emitted += 1
        self._events.append(event)
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(event) + "\n")
                self._sink.flush()
            except (OSError, ValueError):
                self.sink_failures += 1
        return event

    # -- control-plane wiring ----------------------------------------------

    def observe_control_plane(self, control_plane) -> bool:
        """Record every mutation of ``control_plane`` (idempotent).

        Returns True if a listener was attached, False if this plane was
        already being observed. The listener survives redeployments —
        deployments come and go, the control plane (and its log) stay.
        """
        if id(control_plane) in self._observed_planes:
            return False
        self._observed_planes.add(id(control_plane))

        def on_update(event: UpdateEvent) -> None:
            self.emit(
                "control_update",
                op=event.op,
                table=event.table,
                entry_id=(
                    event.entry.entry_id if event.entry is not None else None
                ),
                epoch=event.epoch,
            )

        control_plane.add_listener(on_update)
        return True

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events that fell off the bounded ring (emitted - retained)."""
        return self.emitted - len(self._events)

    def events(self, kind: Optional[str] = None) -> list[dict]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e["kind"] == kind]

    def last(self, kind: Optional[str] = None) -> Optional[dict]:
        for event in reversed(self._events):
            if kind is None or event["kind"] == kind:
                return event
        return None

    def to_jsonl(self) -> str:
        """The ring's current contents as JSON Lines."""
        return "".join(json.dumps(e) + "\n" for e in self._events)

    @staticmethod
    def parse_jsonl(text: str) -> list[dict]:
        """Inverse of :meth:`to_jsonl` (also reads sink files)."""
        return [
            json.loads(line)
            for line in text.splitlines()
            if line.strip()
        ]

    def merge(self, other: Iterable[dict]) -> "EventLog":
        """Fold foreign events in, keeping the ring ordered by time.

        Idempotent: an event already present — same ``(ts_s, seq,
        source)`` identity — is skipped, so merging the same shard's
        log after every ``collect()`` doesn't duplicate its history.
        Newly absorbed events advance :attr:`emitted`, keeping the
        total-emitted counter an honest count of distinct events.
        """

        def identity(event: dict):
            return (
                event.get("ts_s", 0.0),
                event.get("seq", 0),
                event.get("source"),
            )

        seen = {identity(event) for event in self._events}
        fresh = []
        for event in other:
            key = identity(event)
            if key in seen:
                continue
            seen.add(key)
            fresh.append(event)
        self.emitted += len(fresh)
        merged = sorted(
            list(self._events) + fresh,
            key=lambda e: (e.get("ts_s", 0.0), e.get("seq", 0)),
        )
        self._events.clear()
        self._events.extend(merged)
        return self
