"""Sampled packet tracing: 1-in-N span recording through the data path.

A :class:`PacketTracer` attached to an emulator records, for every Nth
packet, the full path the packet took — parser, each table with the
action it selected, each cache with hit/miss, navigation/migration hops
— with a per-node latency attribution derived from the emulator's own
cost charging. Per-node latencies additionally feed fixed-bucket
histograms (:data:`~repro.telemetry.metrics.LATENCY_BUCKETS_NS`), which
the report layer joins against the cost model's per-pipelet predictions.

Overhead discipline: with no tracer attached the compiled fast path's
replay loop pays **one branch per batch** and the interpreter one branch
per packet. With a tracer attached, untraced packets pay one counter
increment; traced packets are driven through the interpreter (which is
bit-identical to the fast path by PR 1's differential contract), so
tracing never perturbs statistics, counters or cache state.

Tracers are shard-mergeable: each sharded worker samples its own stream
and the parent folds the per-worker tracers with :meth:`PacketTracer.
merge` (histograms sum element-wise; recent traces interleave).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.metrics import LATENCY_BUCKETS_NS, Histogram

#: Synthetic span names for stages that are not program nodes.
PARSER_STEP = "__parser__"
NATIVE_CACHE_STEP = "__native_cache__"


@dataclass
class TraceStep:
    """One node visit inside a traced packet's path."""

    node: str
    kind: str  # parser | table | branch | cache | merged | nav | migration
    detail: str = ""  # action name, hit/miss, true/false
    latency_ns: float = 0.0

    def to_json(self) -> dict:
        return {
            "node": self.node,
            "kind": self.kind,
            "detail": self.detail,
            "latency_ns": self.latency_ns,
        }


class PacketTrace:
    """The span record of a single sampled packet."""

    __slots__ = ("steps", "verdict", "latency_ns", "ts_s", "_mark")

    def __init__(self, ts_s: float = 0.0):
        self.steps: list[TraceStep] = []
        self.verdict = ""
        self.latency_ns = 0.0
        self.ts_s = ts_s
        self._mark = 0.0

    def enter(self, node: str, kind: str, busy_ns: float) -> None:
        """Open a span for ``node``; closes the previous span."""
        steps = self.steps
        if steps:
            steps[-1].latency_ns = busy_ns - self._mark
        self._mark = busy_ns
        steps.append(TraceStep(node, kind))

    def note(self, detail: str) -> None:
        """Annotate the open span (chosen action, hit/miss, leg)."""
        if self.steps:
            self.steps[-1].detail = detail

    def close(self, total_busy_ns: float) -> None:
        if self.steps:
            self.steps[-1].latency_ns = total_busy_ns - self._mark
        self.latency_ns = total_busy_ns

    def path(self) -> tuple[str, ...]:
        return tuple(step.node for step in self.steps)

    def to_json(self) -> dict:
        return {
            "ts_s": self.ts_s,
            "verdict": self.verdict,
            "latency_ns": self.latency_ns,
            "steps": [step.to_json() for step in self.steps],
        }


class PacketTracer:
    """Deterministic 1-in-N packet sampler and span aggregator.

    ``sample_interval`` of N records every Nth packet (the first packet
    of a stream is always the first sample, which keeps tests
    reproducible). ``max_traces`` bounds the retained raw spans — the
    per-node histograms keep aggregating past that bound.
    """

    def __init__(
        self,
        sample_interval: int = 64,
        max_traces: int = 512,
    ):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.sample_interval = sample_interval
        self.max_traces = max_traces
        #: Packets seen / actually traced.
        self.seen = 0
        self.sampled = 0
        self.traces: deque[PacketTrace] = deque(maxlen=max_traces)
        #: Per-node latency histograms over traced visits.
        self.node_ns: dict[str, Histogram] = {}

    # -- sampling ----------------------------------------------------------

    def try_begin(self, ts_s: float = 0.0) -> Optional[PacketTrace]:
        """Count one packet; a recorder for every Nth, else None."""
        index = self.seen
        self.seen += 1
        if index % self.sample_interval:
            return None
        self.sampled += 1
        return PacketTrace(ts_s)

    def finish(
        self,
        trace: PacketTrace,
        latency_ns: float,
        dropped: bool,
        egress_port: Optional[int],
    ) -> None:
        """Seal a trace: close spans, set verdict, aggregate."""
        trace.close(latency_ns)
        if dropped:
            trace.verdict = "drop"
        elif egress_port is not None:
            trace.verdict = f"forward:{egress_port}"
        else:
            trace.verdict = "forward"
        node_ns = self.node_ns
        for step in trace.steps:
            hist = node_ns.get(step.node)
            if hist is None:
                hist = node_ns[step.node] = Histogram(LATENCY_BUCKETS_NS)
            hist.observe(step.latency_ns)
        self.traces.append(trace)

    # -- aggregate reads ---------------------------------------------------

    def node_visits(self, node: str) -> int:
        hist = self.node_ns.get(node)
        return hist.count if hist is not None else 0

    def node_mean_ns(self, node: str) -> float:
        hist = self.node_ns.get(node)
        return hist.mean if hist is not None else 0.0

    def node_total_ns(self, node: str) -> float:
        hist = self.node_ns.get(node)
        return hist.sum if hist is not None else 0.0

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        self.seen = 0
        self.sampled = 0
        self.traces.clear()
        self.node_ns.clear()

    def merge(self, other: "PacketTracer") -> "PacketTracer":
        """Fold another tracer in (shard collection).

        Histograms and counts sum; retained traces concatenate under
        the ring bound, ordered by emulated timestamp.
        """
        if other.sample_interval != self.sample_interval:
            raise ValueError(
                "Cannot merge tracers with different sample intervals "
                f"({self.sample_interval} vs {other.sample_interval})"
            )
        self.seen += other.seen
        self.sampled += other.sampled
        for node, hist in other.node_ns.items():
            mine = self.node_ns.get(node)
            if mine is None:
                mine = self.node_ns[node] = Histogram(hist.buckets)
            mine.merge(hist)
        merged = sorted(
            list(self.traces) + list(other.traces),
            key=lambda t: t.ts_s,
        )
        self.traces.clear()
        self.traces.extend(merged)
        return self

    def spawn_empty(self) -> "PacketTracer":
        """A fresh tracer with this tracer's configuration."""
        return PacketTracer(self.sample_interval, self.max_traces)
