"""Declarative SLO rules evaluated against the live telemetry plane.

The watchdog closes the observability half of the paper's continuous
optimization loop: where the :class:`~repro.core.controller.
PipeleonController` *periodically* re-profiles, the watchdog watches
the in-flight flight-recorder samples every interval and raises a
structured ``slo_breach`` event the moment a rule's bound is violated
— the trigger ROADMAP item 5's always-on adaptation service will hang
re-optimization off. Rules are plain data (JSON-loadable, CLI
``--slo rules.json``):

``{"metric": "p99_latency_ns", "max": 12000.0}``
    Merged p99 latency ceiling (ns, bucket-resolution quantile).
``{"metric": "cache_hit_rate", "min": 0.5}``
    Merged flow-cache hit-rate floor (all caches pooled).
``{"metric": "ring_stall_rate", "max": 0.05}``
    Ceiling on the fraction of batch dispatches that stalled on a
    full shm data ring (cumulative stalls / pushed batches).
``{"metric": "heartbeat_staleness_s", "max": 2.0}``
    Per-shard heartbeat deadline: breached for shard *s* when its last
    snapshot is older than the bound **or** the supervisor observed the
    worker die since its last heartbeat (a respawn bump marks the shard
    stale immediately, so a sub-interval kill+respawn still surfaces —
    without it a fast respawn would race the sampling interval and the
    breach would be timing-dependent instead of deterministic).

Breaches are *latched*: a rule emits one ``slo_breach`` when it first
trips and one ``slo_clear`` when the sample is back within bounds, not
one event per interval — so the event log records SLO *episodes*, and
the deterministic fault tests can assert exact event counts.
Subscribers (:meth:`SloWatchdog.subscribe`) receive every emitted
event; :meth:`~repro.core.controller.PipeleonController.
attach_slo_watchdog` uses that hook to schedule an immediate
re-optimization on breach.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

#: Metrics a rule may bound. ``heartbeat_staleness_s`` is evaluated per
#: shard; the rest are evaluated on the merged sample.
RULE_METRICS = (
    "p99_latency_ns",
    "p50_latency_ns",
    "mean_latency_ns",
    "cache_hit_rate",
    "ring_stall_rate",
    "heartbeat_staleness_s",
)

_PER_SHARD_METRICS = frozenset({"heartbeat_staleness_s"})


@dataclass(frozen=True)
class SloRule:
    """One declarative bound: a metric plus exactly one of max/min."""

    metric: str
    max: Optional[float] = None
    min: Optional[float] = None
    name: str = ""

    def __post_init__(self):
        if self.metric not in RULE_METRICS:
            raise ValueError(
                f"Unknown SLO metric {self.metric!r}; expected one of "
                f"{', '.join(RULE_METRICS)}"
            )
        if (self.max is None) == (self.min is None):
            raise ValueError(
                f"SLO rule for {self.metric!r} needs exactly one of "
                "max (ceiling) or min (floor)"
            )
        if not self.name:
            bound = "max" if self.max is not None else "min"
            object.__setattr__(
                self, "name", f"{self.metric}_{bound}"
            )

    @property
    def per_shard(self) -> bool:
        return self.metric in _PER_SHARD_METRICS

    def violated(self, value: Optional[float]) -> bool:
        """Whether ``value`` breaks this rule (None = no data, holds)."""
        if value is None:
            return False
        if self.max is not None:
            return value > self.max
        return value < self.min

    @property
    def bound(self) -> float:
        return self.max if self.max is not None else self.min

    def to_json(self) -> dict:
        out: dict = {"metric": self.metric, "name": self.name}
        if self.max is not None:
            out["max"] = self.max
        else:
            out["min"] = self.min
        return out

    @classmethod
    def from_json(cls, data: dict) -> "SloRule":
        unknown = set(data) - {"metric", "max", "min", "name"}
        if unknown:
            raise ValueError(
                f"Unknown SLO rule keys {sorted(unknown)} in {data!r}"
            )
        return cls(
            metric=data["metric"],
            max=data.get("max"),
            min=data.get("min"),
            name=data.get("name", ""),
        )


def load_slo_rules(path: str) -> tuple[SloRule, ...]:
    """Load rules from a JSON file: a bare list or ``{"rules": [...]}``."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("rules", [])
    if not isinstance(data, list):
        raise ValueError(
            f"{path}: expected a rule list or {{'rules': [...]}}"
        )
    return tuple(SloRule.from_json(rule) for rule in data)


class SloWatchdog:
    """Latched rule evaluation over live telemetry samples.

    ``evaluate`` takes one *sample* — the merged-metrics dict the live
    aggregator builds each interval — and flips each rule's latch as
    needed, emitting ``slo_breach``/``slo_clear`` into ``events``
    (when given), counting into ``registry`` (when given), and calling
    every subscriber with the event dict. Per-shard rules keep one
    latch per shard, keyed ``rule.name:shard``.

    Sample shape (missing keys simply mean "no data yet" — rules hold):

    .. code-block:: python

        {
            "p99_latency_ns": 830.0,
            "p50_latency_ns": 410.0,
            "mean_latency_ns": 455.2,
            "cache_hit_rate": 0.93,
            "ring_stall_rate": 0.0,
            "shards": {
                0: {"heartbeat_staleness_s": 0.01, "forced_stale": False},
                1: {"heartbeat_staleness_s": 4.20, "forced_stale": True},
            },
        }
    """

    def __init__(
        self,
        rules: Sequence[SloRule] = (),
        events=None,
        registry=None,
    ):
        self.rules: tuple[SloRule, ...] = tuple(rules)
        self.events = events
        self.registry = registry
        #: Latch per rule scope: True while breached.
        self._active: dict[str, bool] = {}
        self.breaches = 0
        self.clears = 0
        self._subscribers: list[Callable[[dict], None]] = []

    def __len__(self) -> int:
        return len(self.rules)

    def subscribe(self, callback: Callable[[dict], None]) -> None:
        """Receive every slo_breach/slo_clear event dict as it fires."""
        self._subscribers.append(callback)

    @property
    def active_breaches(self) -> list[str]:
        """Scope keys currently latched breached (sorted)."""
        return sorted(k for k, v in self._active.items() if v)

    # -- evaluation ----------------------------------------------------------

    def _emit(self, kind: str, **fields) -> dict:
        event = {"kind": kind, **fields}
        if self.events is not None:
            event = self.events.emit(kind, **fields)
        if self.registry is not None:
            self.registry.inc(
                f"pipeleon_{kind}es_total"
                if kind == "slo_breach"
                else "pipeleon_slo_clears_total",
                help=(
                    "SLO rule breach episodes"
                    if kind == "slo_breach"
                    else "SLO breach episodes that cleared"
                ),
                rule=fields.get("rule", ""),
            )
        for callback in list(self._subscribers):
            callback(event)
        return event

    def _flip(
        self,
        rule: SloRule,
        scope: str,
        violated: bool,
        value: Optional[float],
        shard: Optional[int],
    ) -> Optional[dict]:
        was = self._active.get(scope, False)
        if violated == was:
            return None
        self._active[scope] = violated
        fields = {
            "rule": rule.name,
            "metric": rule.metric,
            "bound": rule.bound,
            "value": value,
        }
        if shard is not None:
            fields["shard"] = shard
        if violated:
            self.breaches += 1
            return self._emit("slo_breach", **fields)
        self.clears += 1
        return self._emit("slo_clear", **fields)

    def evaluate(self, sample: dict) -> list[dict]:
        """Check every rule against one sample; returns emitted events."""
        emitted: list[dict] = []
        shards: dict = sample.get("shards", {})
        for rule in self.rules:
            if rule.per_shard:
                for shard, status in sorted(shards.items()):
                    value = status.get(rule.metric)
                    violated = rule.violated(value) or bool(
                        status.get("forced_stale")
                    )
                    event = self._flip(
                        rule,
                        f"{rule.name}:{shard}",
                        violated,
                        value,
                        shard,
                    )
                    if event is not None:
                        emitted.append(event)
                continue
            value = sample.get(rule.metric)
            event = self._flip(
                rule, rule.name, rule.violated(value), value, None
            )
            if event is not None:
                emitted.append(event)
        if self.registry is not None:
            self.registry.set_gauge(
                "pipeleon_slo_active_breaches",
                sum(1 for v in self._active.values() if v),
                help="SLO rules currently in breach",
            )
        return emitted
