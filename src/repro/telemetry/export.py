"""Bridges from existing runtime stats objects into the metrics registry.

The emulator already aggregates everything worth knowing — ``RunStats``,
``CounterBank``, per-cache ``CacheStats``, the tracer's node histograms —
in its own mergeable containers. These helpers project those containers
into a :class:`~repro.telemetry.metrics.MetricsRegistry` at export time,
so the hot path never touches the registry and the Prometheus/JSON view
is a pure read-side artifact.
"""

from __future__ import annotations

from typing import Optional

from repro.nic.flow_cache import CacheStats
from repro.nic.stats import RunStats
from repro.nic.targets import TargetModel
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import PacketTracer


def export_run_stats(
    registry: MetricsRegistry,
    stats: RunStats,
    target: Optional[TargetModel] = None,
    **labels: object,
) -> None:
    """Project a replay's RunStats into counters/gauges/histograms."""
    registry.inc(
        "pipeleon_packets_total",
        stats.packets,
        help="Packets processed by the emulator",
        **labels,
    )
    registry.inc(
        "pipeleon_packets_dropped_total",
        stats.dropped,
        help="Packets dropped by the program",
        **labels,
    )
    registry.inc(
        "pipeleon_migrations_total",
        stats.migrations,
        help="ASIC<->CPU pipeline migrations",
        **labels,
    )
    registry.inc(
        "pipeleon_bytes_total",
        stats.total_bytes,
        help="Bytes processed by the emulator",
        **labels,
    )
    hist = registry.histogram(
        "pipeleon_packet_latency_ns",
        help="Per-packet end-to-end latency (ns)",
        **labels,
    )
    for latency in stats._latencies:
        hist.observe(latency)
    registry.set_gauge(
        "pipeleon_mean_latency_ns",
        stats.mean_latency_ns,
        help="Mean per-packet latency (ns)",
        **labels,
    )
    if target is not None:
        registry.set_gauge(
            "pipeleon_throughput_gbps",
            stats.throughput_gbps(target),
            help="Modelled sustainable throughput (Gbps)",
            **labels,
        )


def export_counter_bank(registry: MetricsRegistry, bank) -> None:
    """Project the emulator's P4 counters (sampling-corrected)."""
    for key, packets in bank.snapshot().items():
        kind, name, detail = (
            key if len(key) == 3 else (key[0], key[1], "")
        )
        registry.inc(
            "pipeleon_p4_counter_packets_total",
            packets,
            help="P4 instrumentation counters (sampling-corrected)",
            kind=kind,
            node=name,
            detail=detail,
        )


def export_cache_stats(
    registry: MetricsRegistry, cache: str, stats: CacheStats
) -> None:
    """Project one flow cache's hit/miss/churn stats."""
    for field, value in (
        ("hits", stats.hits),
        ("misses", stats.misses),
        ("insertions", stats.insertions),
        ("rejected_insertions", stats.rejected_insertions),
        ("evictions", stats.evictions),
        ("invalidations", stats.invalidations),
    ):
        registry.inc(
            "pipeleon_cache_events_total",
            value,
            help="Flow-cache lifecycle events",
            cache=cache,
            event=field,
        )
    registry.set_gauge(
        "pipeleon_cache_hit_rate",
        stats.hit_rate,
        help="Flow-cache hit rate over the run",
        cache=cache,
    )


def export_tracer(registry: MetricsRegistry, tracer: PacketTracer) -> None:
    """Project the tracer's sampling counters and node histograms."""
    registry.inc(
        "pipeleon_trace_packets_seen_total",
        tracer.seen,
        help="Packets considered by the trace sampler",
    )
    registry.inc(
        "pipeleon_trace_packets_sampled_total",
        tracer.sampled,
        help="Packets actually traced (1-in-N)",
    )
    registry.set_gauge(
        "pipeleon_trace_sample_interval",
        tracer.sample_interval,
        help="Trace sampling interval N",
    )
    for node, hist in tracer.node_ns.items():
        registry.histogram(
            "pipeleon_node_latency_ns",
            help="Traced per-node latency (ns)",
            buckets=hist.buckets,
            node=node,
        ).merge(hist)


def export_columnar(
    registry: MetricsRegistry,
    demotions: dict[str, int],
    columnar_packets: int = 0,
    columnar_partitions: int = 0,
    **labels: object,
) -> None:
    """Project the columnar tier's demotion/retirement accounting.

    Called at export time with the cumulative counts the emulator (or
    the sharded merge) owns — the hot path never touches the registry.
    """
    for reason, count in sorted(demotions.items()):
        registry.inc(
            "pipeleon_columnar_demotions_total",
            count,
            help=(
                "Packets the columnar tier demoted to the closure "
                "fast path, by reason"
            ),
            reason=reason,
            **labels,
        )
    registry.inc(
        "pipeleon_columnar_packets_total",
        columnar_packets,
        help="Packets fully retired by the columnar batch kernels",
        **labels,
    )
    registry.inc(
        "pipeleon_columnar_partitions_total",
        columnar_partitions,
        help=(
            "Flow-key partitions the batch kernels resolved (one "
            "table lookup each); partitions/packets near 1 means the "
            "partition-count bottleneck has eaten the batch win"
        ),
        **labels,
    )


def export_event_log(registry: MetricsRegistry, events) -> None:
    """Project an EventLog's bookkeeping counters.

    Ring rotation used to be silent: ``emitted`` kept counting while
    old events fell off the deque, and a dead JSONL sink swallowed
    writes without a trace. Both are now first-class series so a scrape
    can alarm on history loss.
    """
    registry.inc(
        "pipeleon_events_emitted_total",
        events.emitted,
        help="Structured events ever emitted",
    )
    registry.inc(
        "pipeleon_events_dropped_total",
        events.dropped,
        help="Events that fell off the bounded in-memory ring",
    )
    registry.inc(
        "pipeleon_event_sink_failures_total",
        events.sink_failures,
        help="Event JSONL sink writes that failed",
    )


def export_emulator(registry: MetricsRegistry, emulator) -> None:
    """Project an emulator's counters and cache stats."""
    export_counter_bank(registry, emulator.counters)
    for name, cache in emulator.flow_caches.items():
        export_cache_stats(registry, name, cache.stats)
    if emulator.native_cache is not None:
        export_cache_stats(
            registry, "__native__", emulator.native_cache.stats
        )
    export_columnar(
        registry,
        emulator.columnar_demotions,
        emulator.columnar_packets,
        emulator.columnar_partitions,
    )
