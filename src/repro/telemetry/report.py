"""Report layer: join traced latencies against cost-model predictions.

Closes the loop the paper leaves open: §3.1's cost model predicts
per-pipelet latency, the tracer measures it on the same run, and this
module lines the two up per pipelet. The measured figure for a pipelet
is the traced time spent in its tables per packet *entering* the
pipelet; the predicted figure is :func:`~repro.core.hotspots.
pipelet_latency` (reach-weighted node costs conditional on entry), so
both sides answer the same question and an error column is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.costmodel import CostModel
from repro.core.hotspots import pipelet_latency
from repro.core.pipelets import partition
from repro.core.profiling import RuntimeProfile
from repro.ir.program import Program
from repro.telemetry.tracing import PacketTracer


@dataclass(frozen=True)
class PipeletRow:
    """Measured-vs-predicted latency for one pipelet."""

    pipelet_id: str
    tables: tuple[str, ...]
    traced_packets: int  # traced packets that entered the pipelet
    measured_ns: float  # traced ns in pipelet tables per entering packet
    predicted_ns: float  # cost-model L(G') under the run's profile

    @property
    def error_pct(self) -> Optional[float]:
        """Signed relative error; None when unmeasurable."""
        if not self.traced_packets or self.predicted_ns <= 0:
            return None
        return (
            (self.measured_ns - self.predicted_ns)
            / self.predicted_ns
            * 100.0
        )

    def to_json(self) -> dict:
        return {
            "pipelet_id": self.pipelet_id,
            "tables": list(self.tables),
            "traced_packets": self.traced_packets,
            "measured_ns": self.measured_ns,
            "predicted_ns": self.predicted_ns,
            "error_pct": self.error_pct,
        }


@dataclass(frozen=True)
class LatencyReport:
    """Per-pipelet rows plus whole-program measured/predicted totals."""

    rows: tuple[PipeletRow, ...]
    traced_packets: int
    measured_total_ns: float  # mean traced end-to-end latency
    predicted_total_ns: float  # cost-model expected program latency

    def to_json(self) -> dict:
        return {
            "rows": [row.to_json() for row in self.rows],
            "traced_packets": self.traced_packets,
            "measured_total_ns": self.measured_total_ns,
            "predicted_total_ns": self.predicted_total_ns,
        }


def measured_vs_predicted(
    program: Program,
    profile: RuntimeProfile,
    model: CostModel,
    tracer: PacketTracer,
) -> LatencyReport:
    """Build the measured-vs-predicted table for a traced run.

    ``program`` is the *deployed* program (the one the tracer watched);
    pipelets are recomputed from it, so optimized layouts report their
    actual runs, not the original program's.
    """
    rows = []
    for pipelet in partition(program):
        entered = tracer.node_visits(pipelet.entry)
        total_ns = sum(
            tracer.node_total_ns(name) for name in pipelet.table_names
        )
        rows.append(
            PipeletRow(
                pipelet_id=pipelet.pipelet_id,
                tables=pipelet.table_names,
                traced_packets=entered,
                measured_ns=total_ns / entered if entered else 0.0,
                predicted_ns=pipelet_latency(
                    program, pipelet, profile, model
                ),
            )
        )
    traced = len(tracer.traces)
    measured_total = (
        sum(t.latency_ns for t in tracer.traces) / traced if traced else 0.0
    )
    return LatencyReport(
        rows=tuple(rows),
        traced_packets=tracer.sampled,
        measured_total_ns=measured_total,
        predicted_total_ns=model.expected_latency(program, profile),
    )


@dataclass(frozen=True)
class KernelRow:
    """One DAG node's columnar kernel time vs its modeled cost.

    Wall time is host-CPU seconds spent in the node's batch kernel;
    the model figure is the emulated device nanoseconds the cost model
    charges per packet at that node. The units differ, so the
    meaningful comparison is the *share* columns: if the cost model is
    faithful, the nodes it says dominate device latency should also
    dominate kernel wall time.
    """

    node: str
    packets: int
    partitions: int  # flow-key partitions resolved (lookups done)
    wall_us_per_kpkt: float  # measured kernel host-us per 1k packets
    model_ns_per_pkt: float  # cost-model primary charge per packet
    wall_share: float  # fraction of total kernel wall time
    model_share: float  # fraction of total modeled packet-ns

    def to_json(self) -> dict:
        return {
            "node": self.node,
            "packets": self.packets,
            "partitions": self.partitions,
            "wall_us_per_kpkt": self.wall_us_per_kpkt,
            "model_ns_per_pkt": self.model_ns_per_pkt,
            "wall_share": self.wall_share,
            "model_share": self.model_share,
        }


@dataclass(frozen=True)
class KernelReport:
    """Per-node columnar kernel timings joined with model predictions."""

    rows: tuple[KernelRow, ...]
    columnar_packets: int
    columnar_partitions: int
    demotions: dict[str, int]

    def to_json(self) -> dict:
        return {
            "rows": [row.to_json() for row in self.rows],
            "columnar_packets": self.columnar_packets,
            "columnar_partitions": self.columnar_partitions,
            "demotions": dict(self.demotions),
        }


def columnar_kernel_report(emulator) -> KernelReport:
    """Join a columnar engine's kernel timings with cost predictions.

    ``emulator`` is a :class:`~repro.nic.emulator.NicEmulator` whose
    columnar tier has replayed traffic (``engine="columnar"``); the
    engine accumulates per-node wall time and packet counts as a side
    effect of every walk.
    """
    engine = emulator.columnar
    wall_total = sum(engine.node_time_s.values())
    model_weight = {
        node: engine.node_model_ns.get(node, 0.0)
        * engine.node_packets.get(node, 0)
        for node in engine.node_time_s
    }
    model_total = sum(model_weight.values())
    rows = []
    for node, wall_s in sorted(
        engine.node_time_s.items(), key=lambda kv: -kv[1]
    ):
        packets = engine.node_packets.get(node, 0)
        rows.append(
            KernelRow(
                node=node,
                packets=packets,
                partitions=engine.node_partitions.get(node, 0),
                wall_us_per_kpkt=(
                    wall_s * 1e6 / (packets / 1000.0) if packets else 0.0
                ),
                model_ns_per_pkt=engine.node_model_ns.get(node, 0.0),
                wall_share=wall_s / wall_total if wall_total else 0.0,
                model_share=(
                    model_weight[node] / model_total if model_total else 0.0
                ),
            )
        )
    return KernelReport(
        rows=tuple(rows),
        columnar_packets=emulator.columnar_packets,
        columnar_partitions=emulator.columnar_partitions,
        demotions=dict(emulator.columnar_demotions),
    )


def format_kernel_report(report: KernelReport) -> str:
    """Human-readable columnar kernel-vs-model table."""
    header = (
        f"{'node':<28} {'packets':>9} {'parts':>7} {'us/kpkt':>9} "
        f"{'model_ns':>9} {'wall%':>7} {'model%':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        name = row.node if len(row.node) <= 28 else row.node[:25] + "..."
        lines.append(
            f"{name:<28} {row.packets:>9} {row.partitions:>7} "
            f"{row.wall_us_per_kpkt:>9.2f} "
            f"{row.model_ns_per_pkt:>9.1f} {row.wall_share * 100:>6.1f}% "
            f"{row.model_share * 100:>6.1f}%"
        )
    lines.append("-" * len(header))
    demoted = sum(report.demotions.values())
    reasons = (
        ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(report.demotions.items())
        )
        if report.demotions
        else "none"
    )
    lines.append(
        f"columnar packets: {report.columnar_packets}  "
        f"partitions: {report.columnar_partitions}  "
        f"demoted: {demoted} ({reasons})"
    )
    return "\n".join(lines)


def format_report(report: LatencyReport) -> str:
    """Human-readable measured-vs-predicted table."""
    header = (
        f"{'pipelet':<12} {'tables':<40} {'traced':>7} "
        f"{'measured_ns':>12} {'predicted_ns':>13} {'error':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        tables = " -> ".join(row.tables)
        if len(tables) > 40:
            tables = tables[:37] + "..."
        error = (
            f"{row.error_pct:+.1f}%" if row.error_pct is not None else "n/a"
        )
        lines.append(
            f"{row.pipelet_id:<12} {tables:<40} {row.traced_packets:>7} "
            f"{row.measured_ns:>12.1f} {row.predicted_ns:>13.1f} "
            f"{error:>8}"
        )
    lines.append("-" * len(header))
    total_error = "n/a"
    if report.predicted_total_ns > 0 and report.traced_packets:
        total_error = (
            f"{(report.measured_total_ns - report.predicted_total_ns) / report.predicted_total_ns * 100.0:+.1f}%"
        )
    lines.append(
        f"{'program':<12} {'(end-to-end, traced mean)':<40} "
        f"{report.traced_packets:>7} {report.measured_total_ns:>12.1f} "
        f"{report.predicted_total_ns:>13.1f} {total_error:>8}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Design-space exploration: predicted-vs-measured ranking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DseCellRow:
    """One sweep cell's predicted and measured latency, with ranks."""

    cell: int
    fingerprint: str
    label: str  # short human config digest (app/target/engine...)
    predicted_ns: float
    measured_ns: float
    predicted_rank: float  # average ranks: ties share a rank
    measured_rank: float

    def to_json(self) -> dict:
        return {
            "cell": self.cell,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "predicted_ns": self.predicted_ns,
            "measured_ns": self.measured_ns,
            "predicted_rank": self.predicted_rank,
            "measured_rank": self.measured_rank,
        }


@dataclass(frozen=True)
class DseRankingReport:
    """Does the cost model *order* configurations correctly?

    The DSE harness cares about ranking more than absolute error: the
    search only needs the model to pick the right winner, so the
    headline number is the Spearman rank correlation between predicted
    and measured latency across the sweep (tie-aware: tied values get
    their average rank).
    """

    rows: tuple[DseCellRow, ...]  # sorted by measured latency
    spearman: Optional[float]  # None when fewer than 2 distinct cells

    def to_json(self) -> dict:
        return {
            "rows": [row.to_json() for row in self.rows],
            "spearman": self.spearman,
        }


def _average_ranks(values: list[float]) -> list[float]:
    """1-based ranks, ties averaged (the Spearman convention)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman_correlation(
    predicted: list[float], measured: list[float]
) -> Optional[float]:
    """Tie-aware Spearman rho (Pearson over average ranks)."""
    n = len(predicted)
    if n != len(measured):
        raise ValueError("predicted/measured length mismatch")
    if n < 2:
        return None
    rp = _average_ranks(list(predicted))
    rm = _average_ranks(list(measured))
    mean_p = sum(rp) / n
    mean_m = sum(rm) / n
    cov = sum((p - mean_p) * (m - mean_m) for p, m in zip(rp, rm))
    var_p = sum((p - mean_p) ** 2 for p in rp)
    var_m = sum((m - mean_m) ** 2 for m in rm)
    if var_p == 0.0 or var_m == 0.0:
        # A constant side carries no ranking information.
        return None
    return cov / (var_p * var_m) ** 0.5


def _cell_label(config: dict) -> str:
    parts = [str(config.get("app", "?")), str(config.get("target", "?"))]
    engine = config.get("engine")
    if engine and engine != "auto":
        parts.append(str(engine))
    jobs = config.get("jobs", 1)
    if jobs and int(jobs) > 1:
        parts.append(f"x{jobs}")
    locality = config.get("locality")
    if locality and locality != "uniform":
        parts.append(str(locality))
    cache = config.get("cache_capacity")
    if cache is not None:
        parts.append(f"c{cache}")
    return "/".join(parts)


def dse_ranking_report(records) -> DseRankingReport:
    """Rank-join run-database records' predicted vs measured latency.

    ``records`` are :mod:`repro.dse.rundb` dicts (any iterable); rows
    come back sorted by measured latency so the table reads as a
    leaderboard.
    """
    cells = [
        r
        for r in records
        if "predicted" in r and "measured" in r
    ]
    predicted = [float(r["predicted"]["latency_ns"]) for r in cells]
    measured = [float(r["measured"]["mean_latency_ns"]) for r in cells]
    pred_ranks = _average_ranks(predicted)
    meas_ranks = _average_ranks(measured)
    rows = [
        DseCellRow(
            cell=int(r.get("cell", i)),
            fingerprint=str(r.get("fingerprint", "")),
            label=_cell_label(r.get("config", {})),
            predicted_ns=predicted[i],
            measured_ns=measured[i],
            predicted_rank=pred_ranks[i],
            measured_rank=meas_ranks[i],
        )
        for i, r in enumerate(cells)
    ]
    rows.sort(key=lambda row: (row.measured_ns, row.cell))
    return DseRankingReport(
        rows=tuple(rows),
        spearman=spearman_correlation(predicted, measured),
    )


def format_dse_report(report: DseRankingReport) -> str:
    """Human-readable sweep leaderboard with rank agreement."""
    header = (
        f"{'cell':>4} {'config':<38} {'measured_ns':>12} "
        f"{'predicted_ns':>13} {'m#':>5} {'p#':>5}"
    )
    lines = [header, "-" * len(header)]
    for row in report.rows:
        label = (
            row.label if len(row.label) <= 38 else row.label[:35] + "..."
        )
        lines.append(
            f"{row.cell:>4} {label:<38} {row.measured_ns:>12.1f} "
            f"{row.predicted_ns:>13.1f} {row.measured_rank:>5.1f} "
            f"{row.predicted_rank:>5.1f}"
        )
    lines.append("-" * len(header))
    spearman = (
        f"{report.spearman:+.3f}" if report.spearman is not None else "n/a"
    )
    lines.append(
        f"cells: {len(report.rows)}  spearman(predicted, measured): "
        f"{spearman}"
    )
    return "\n".join(lines)
