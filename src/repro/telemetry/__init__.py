"""Observability subsystem: metrics, decision events, packet tracing.

One :class:`Telemetry` object bundles the three collectors plus the
report layer:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — shard-mergeable
  counters/gauges/histograms, exportable as Prometheus text or JSON;
* :class:`~repro.telemetry.events.EventLog` — structured record of
  control-plane mutations and controller decisions (JSONL ring +
  optional file sink), stamped with the emulated clock;
* :class:`~repro.telemetry.tracing.PacketTracer` — 1-in-N span recorder
  for per-node latency attribution, off unless ``trace_interval > 0``;
* :mod:`~repro.telemetry.report` — joins traced per-pipelet latencies
  against the cost model's predictions.

A deployment built with ``telemetry=`` attaches the tracer to its
emulator, binds the event log to the deployment clock, and subscribes
it to the control plane; the sharded deployment additionally merges
per-worker tracers back into the parent on collection.
"""

from __future__ import annotations

from typing import Optional

from repro.nic.control_plane import SimClock
from repro.telemetry.events import EventLog
from repro.telemetry.export import (
    export_cache_stats,
    export_columnar,
    export_counter_bank,
    export_emulator,
    export_event_log,
    export_run_stats,
    export_tracer,
)
from repro.telemetry.live import (
    LiveAggregator,
    LiveOptions,
    LivePlane,
    MetricsServer,
    render_top,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.slo import (
    RULE_METRICS,
    SloRule,
    SloWatchdog,
    load_slo_rules,
)
from repro.telemetry.timeseries import WALL_FIELDS, FlightRecorder

# NOTE: repro.telemetry.report is deliberately NOT imported here — it
# pulls in repro.core, whose package init imports the emulator, and the
# emulator imports repro.telemetry.tracing. Import the report layer as
# ``from repro.telemetry.report import ...`` at the point of use.
from repro.telemetry.tracing import (
    NATIVE_CACHE_STEP,
    PARSER_STEP,
    PacketTrace,
    PacketTracer,
    TraceStep,
)

__all__ = [
    "EventLog",
    "FlightRecorder",
    "Histogram",
    "LATENCY_BUCKETS_NS",
    "LiveAggregator",
    "LiveOptions",
    "LivePlane",
    "MetricsRegistry",
    "MetricsServer",
    "NATIVE_CACHE_STEP",
    "PARSER_STEP",
    "PacketTrace",
    "PacketTracer",
    "RULE_METRICS",
    "SloRule",
    "SloWatchdog",
    "Telemetry",
    "TraceStep",
    "WALL_FIELDS",
    "export_cache_stats",
    "export_columnar",
    "export_counter_bank",
    "export_emulator",
    "export_event_log",
    "export_run_stats",
    "export_tracer",
    "load_slo_rules",
    "render_top",
]


class Telemetry:
    """The bundle a deployment wires through the stack.

    ``trace_interval == 0`` (the default) leaves the tracer off — the
    data path then pays only its existing ``tracer is None`` branch.
    """

    def __init__(
        self,
        trace_interval: int = 0,
        event_capacity: int = 4096,
        max_traces: int = 512,
        events_path: Optional[str] = None,
        clock: Optional[SimClock] = None,
    ):
        if trace_interval < 0:
            raise ValueError("trace_interval must be >= 0")
        self.registry = MetricsRegistry()
        self.events = EventLog(
            capacity=event_capacity, clock=clock, sink_path=events_path
        )
        self.tracer: Optional[PacketTracer] = (
            PacketTracer(trace_interval, max_traces)
            if trace_interval
            else None
        )

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def bind_clock(self, clock: SimClock) -> None:
        """Stamp events with the deployment's emulated clock."""
        self.events.clock = clock

    def observe_control_plane(self, control_plane) -> bool:
        return self.events.observe_control_plane(control_plane)

    def close(self) -> None:
        self.events.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
