"""Rolling time-series flight recorder for the live telemetry plane.

A :class:`FlightRecorder` is the durable half of in-flight
observability: the live aggregator (:mod:`repro.telemetry.live`)
appends one *row* per interval — a flat JSON-friendly dict carrying the
merged and per-shard state of a running sharded replay (packet totals,
latency quantiles, cache hit rates, ring occupancy/stalls, columnar
demotions, worker liveness). Rows live in a bounded in-memory window
(old rows fall off, like the event ring) and, optionally, stream to an
append-only JSONL sink so a long run keeps its complete history on
disk even after the window rotates.

Determinism contract: a row separates *wall-clock* fields (arrival
times, heartbeat ages, the host clock) from *stream* fields (packet
counts, latency quantiles, cache counters, demotion totals). Under the
deterministic packet-count snapshot cadence
(``LiveOptions.every_packets``), the stream fields of the per-shard
``kind="shard"`` rows are a pure function of the replayed traffic, so
two runs of the same replay produce bit-identical rows once
:meth:`FlightRecorder.strip_wall` removes the wall fields — the
property ``tests/test_live_telemetry.py`` pins. Wall-cadence
``kind="interval"`` rows are inherently timing-dependent and make no
such promise.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable, Optional

#: Field names whose values come from the host's wall clock (or are
#: derived from it); :meth:`FlightRecorder.strip_wall` removes them at
#: any nesting depth when canonicalising rows for comparison.
WALL_FIELDS = frozenset(
    {
        "wall_s",
        "mono_s",
        "age_s",
        "staleness_s",
        "interval_s",
        "busy_s",
    }
)


class FlightRecorder:
    """Bounded rolling window of telemetry rows + append-only JSONL sink."""

    def __init__(
        self,
        window: int = 512,
        sink_path: Optional[str] = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        #: Total rows ever appended (the window may have rotated).
        self.appended = 0
        #: Sink writes that failed (a full disk or revoked file must be
        #: visible in metrics, not silently swallowed — satellite of
        #: the same contract as ``EventLog.sink_failures``).
        self.sink_failures = 0
        self._rows: deque[dict] = deque(maxlen=window)
        self._sink: Optional[IO[str]] = None
        self.sink_path = sink_path
        if sink_path is not None:
            self.open_sink(sink_path)

    # -- sink lifecycle ----------------------------------------------------

    def open_sink(self, path: str) -> None:
        """Start (or switch) the append-only JSONL file sink."""
        self.close()
        self._sink = open(path, "a")
        self.sink_path = path

    def close(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:  # pragma: no cover - close of broken fd
                self.sink_failures += 1
            self._sink = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appending -----------------------------------------------------------

    def append(self, row: dict) -> dict:
        """Record one row; stamps ``row`` (the monotone row index)."""
        row = dict(row)
        row["row"] = self.appended
        self.appended += 1
        self._rows.append(row)
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(row) + "\n")
                self._sink.flush()
            except (OSError, ValueError):
                self.sink_failures += 1
        return row

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def dropped(self) -> int:
        """Rows that fell off the bounded window."""
        return self.appended - len(self._rows)

    def rows(self, kind: Optional[str] = None) -> list[dict]:
        if kind is None:
            return list(self._rows)
        return [r for r in self._rows if r.get("kind") == kind]

    def last(self, kind: Optional[str] = None) -> Optional[dict]:
        for row in reversed(self._rows):
            if kind is None or row.get("kind") == kind:
                return row
        return None

    @staticmethod
    def parse_jsonl(text: str) -> list[dict]:
        """Read a sink file's rows back."""
        return [
            json.loads(line)
            for line in text.splitlines()
            if line.strip()
        ]

    # -- determinism helpers -------------------------------------------------

    @staticmethod
    def strip_wall(row):
        """A deep copy of ``row`` with every wall-clock field removed.

        Recurses through nested dicts and lists, so per-shard
        sub-records lose their heartbeat ages too. The result is the
        canonical *stream* view two same-traffic runs must agree on
        under the deterministic snapshot cadence.
        """
        if isinstance(row, dict):
            return {
                key: FlightRecorder.strip_wall(value)
                for key, value in row.items()
                if key not in WALL_FIELDS
            }
        if isinstance(row, list):
            return [FlightRecorder.strip_wall(item) for item in row]
        return row

    @staticmethod
    def canonical(rows: Iterable[dict]) -> list[dict]:
        """Wall-stripped rows in a run-independent order.

        ``kind="shard"`` rows are keyed by ``(shard, seq)`` — their
        arrival interleaving across shards is scheduler-dependent, the
        set is not. The global ``row`` stamp encodes exactly that
        interleaving, so it is dropped along with the wall fields.
        """
        ordered = sorted(
            (FlightRecorder.strip_wall(row) for row in rows),
            key=lambda r: (
                r.get("kind", ""),
                r.get("shard", -1),
                r.get("seq", r.get("row", 0)),
            ),
        )
        for row in ordered:
            row.pop("row", None)
        return ordered
