"""Live telemetry plane: in-flight aggregation, scrape endpoint, top view.

PR 3's telemetry is batch-only — metrics export after a replay
finishes. This module makes a *running* sharded fleet observable:

* Shard workers push compact snapshots (packet totals, an incremental
  latency histogram, cache hit/miss counts, columnar demotions) over a
  per-shard **sidecar pipe**, off the packet hot path — the snapshot
  cadence is wall-interval (heartbeats, default) or packet-count
  (deterministic, for bit-stable tests). The push lives in
  :mod:`repro.nic.sharding`; this module is the parent side.
* :class:`LiveAggregator` drains those sidecar pipes on a background
  thread, folds the latest per-shard snapshots with the parent-side
  transport gauges (ring occupancy, stalls — live, per shard) into
  rolling :class:`~repro.telemetry.timeseries.FlightRecorder` rows,
  evaluates the :class:`~repro.telemetry.slo.SloWatchdog` each
  interval, and republishes everything as a
  :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot.
* :class:`MetricsServer` serves that registry as Prometheus text on
  ``/metrics`` (plus a JSON ``/health``) from a stdlib
  ``http.server`` thread, live during the replay.
* :func:`render_top` turns recorder rows into the refreshing terminal
  view behind ``repro top``.

Everything here is read-side: the aggregator only ever *reads* the
emulator's public telemetry surfaces (``live_conns``,
``live_shard_status()``) and its own pipes, so a wedged aggregator can
slow scrapes but never a worker — workers drop heartbeats rather than
block on a full sidecar pipe (except under the deterministic cadence,
where a bounded blocking send preserves bit-stability).
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.slo import SloRule, SloWatchdog
from repro.telemetry.timeseries import FlightRecorder

__all__ = [
    "LiveAggregator",
    "LiveOptions",
    "LivePlane",
    "MetricsServer",
    "render_top",
]

#: Ceiling on the aggregator's poll period: sidecar pipes must drain
#: well within a snapshot interval so blocking-cadence workers never
#: stall and heartbeat ages stay honest.
_MAX_TICK_S = 0.05


def _finite(value: Optional[float]) -> Optional[float]:
    """JSON-safe float: non-finite (empty-histogram quantiles) -> None."""
    if value is None or not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class LiveOptions:
    """Configuration for the live telemetry plane.

    ``interval_s`` paces both the worker heartbeat snapshots and the
    aggregator's merged flight-recorder rows / SLO evaluation.
    ``every_packets`` switches the *worker* cadence to deterministic
    packet counting (a snapshot after every N replayed packets, plus
    one at worker birth and one at replay end): per-shard rows are
    then a pure function of the traffic, which is what the bit-
    stability tests pin. ``rules`` arms the SLO watchdog;
    ``serve_port`` (0 = ephemeral) starts the scrape endpoint.
    """

    interval_s: float = 1.0
    every_packets: Optional[int] = None
    window: int = 512
    flight_path: Optional[str] = None
    rules: tuple[SloRule, ...] = ()
    serve_port: Optional[int] = None
    serve_host: str = "127.0.0.1"

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.every_packets is not None and self.every_packets < 1:
            raise ValueError("every_packets must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.serve_port is not None and not (
            0 <= self.serve_port <= 65535
        ):
            raise ValueError("serve_port must be in [0, 65535]")
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, SloRule):
                raise TypeError(
                    f"rules must be SloRule instances, got {rule!r}"
                )


def _snapshot_quantiles(hist: Optional[Histogram]) -> dict:
    if hist is None or not hist.count:
        return {"p50_ns": None, "p99_ns": None, "mean_ns": None}
    return {
        "p50_ns": _finite(hist.quantile(0.5)),
        "p99_ns": _finite(hist.quantile(0.99)),
        "mean_ns": _finite(hist.mean),
    }


def _snapshot_hit_rate(snapshot: dict) -> Optional[float]:
    hits = misses = 0
    for h, m in snapshot.get("caches", {}).values():
        hits += h
        misses += m
    native = snapshot.get("native")
    if native is not None:
        hits += native[0]
        misses += native[1]
    total = hits + misses
    return hits / total if total else None


class LiveAggregator:
    """Background merger of worker snapshots into rows, metrics, SLOs.

    Reads the sidecar pipes of a live-enabled
    :class:`~repro.nic.sharding.ShardedEmulator` (``live_conns``) and
    its parent-side shard status (``live_shard_status()``); owns the
    flight recorder, the SLO watchdog and the live metrics registry.
    ``start()`` launches the daemon thread; ``stop()`` is idempotent,
    appends one final row from the final state (so the recorder's last
    row always matches the replay summary), and closes the recorder.
    """

    def __init__(
        self,
        emulator=None,
        telemetry=None,
        options: Optional[LiveOptions] = None,
    ):
        self.options = options or LiveOptions()
        #: The watched fleet. ``None`` between deployments: a
        #: :class:`LivePlane` aggregator outlives any one emulator and
        #: is re-pointed with :meth:`retarget` on every redeploy.
        self.emulator = emulator
        self.telemetry = telemetry
        #: Breach/clear events land in the run's event log when one is
        #: wired (so SLO episodes interleave with controller decisions
        #: and worker faults), else in a private log.
        self.events: EventLog = (
            telemetry.events if telemetry is not None else EventLog()
        )
        self.recorder = FlightRecorder(
            window=self.options.window,
            sink_path=self.options.flight_path,
        )
        self.watchdog = SloWatchdog(
            self.options.rules, events=self.events
        )
        self._rule_breaches: dict[str, int] = {}
        self._rule_clears: dict[str, int] = {}
        self.watchdog.subscribe(self._on_slo_event)
        self._lock = threading.Lock()
        #: Serializes retargeting against the background thread's
        #: drain/sample passes (reentrant: stop() drains then ticks).
        self._target_lock = threading.RLock()
        self._registry = MetricsRegistry()
        self._snapshots: dict[int, dict] = {}
        self._last_seen: dict[int, float] = {}
        self._heartbeats: dict[int, int] = {}
        self._seen_respawns: dict[int, int] = {}
        self._forced_stale: dict[int, bool] = {}
        #: Totals folded in from fleets this aggregator watched before
        #: the current one (see :meth:`retarget`): daemon-lifetime
        #: counters stay monotone across redeploys.
        self._carry = {
            "packets": 0,
            "dropped": 0,
            "columnar_packets": 0,
            "ring_stalls": 0,
            "ring_pushed_batches": 0,
            "heartbeats": 0,
            "cache_hits": 0,
            "cache_lookups": 0,
        }
        self._carry_demotions: dict[str, int] = {}
        self._carry_hist = Histogram()
        #: Fleets adopted over the aggregator's lifetime.
        self.fleets = 1 if emulator is not None else 0
        self._start_mono = time.monotonic()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LiveAggregator":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-live-aggregator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread, flush a final row, close the recorder."""
        if self._stopped:
            return
        self._stopped = True
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._drain()
        self._tick(final=True)
        self.recorder.close()

    close = stop

    def __enter__(self) -> "LiveAggregator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- retargeting (daemon-lifetime aggregation) ---------------------------

    def retarget(self, emulator) -> None:
        """Re-point the aggregator at a new fleet (or ``None``).

        Called around every redeploy when the aggregator outlives its
        deployments (:class:`LivePlane`). The outgoing fleet's sidecar
        pipes are drained one final time and its cumulative totals —
        packets, drops, latency histogram, cache legs, ring counters,
        demotions — are folded into a carry base, so the merged sample
        (and therefore ``/metrics`` counters and SLO inputs) stays
        monotone across fleet generations. Per-shard liveness state is
        reset: a fresh fleet starts with clean heartbeat/respawn
        latches, so tearing down the old workers never registers as a
        breach.
        """
        with self._target_lock:
            if self.emulator is not None:
                try:
                    self._drain()
                except Exception:  # pragma: no cover - defensive
                    pass
                status = self._shard_status()
                carry = self._carry
                for snapshot in self._snapshots.values():
                    carry["packets"] += snapshot["packets"]
                    carry["dropped"] += snapshot["dropped"]
                    carry["columnar_packets"] += snapshot.get(
                        "columnar_packets", 0
                    )
                    for reason, count in snapshot.get(
                        "demotions", {}
                    ).items():
                        self._carry_demotions[reason] = (
                            self._carry_demotions.get(reason, 0)
                            + count
                        )
                    hist = snapshot.get("hist")
                    if hist is not None:
                        self._carry_hist.merge(hist)
                    hits = misses = 0
                    for h, m in snapshot.get("caches", {}).values():
                        hits += h
                        misses += m
                    native = snapshot.get("native")
                    if native is not None:
                        hits += native[0]
                        misses += native[1]
                    carry["cache_hits"] += hits
                    carry["cache_lookups"] += hits + misses
                for entry in status:
                    carry["ring_stalls"] += entry.get("ring_stalls", 0)
                    carry["ring_pushed_batches"] += entry.get(
                        "pushed_batches", 0
                    )
                carry["heartbeats"] += sum(self._heartbeats.values())
            self._snapshots.clear()
            self._last_seen.clear()
            self._heartbeats.clear()
            self._seen_respawns.clear()
            self._forced_stale.clear()
            self.emulator = emulator
            if emulator is not None:
                self.fleets += 1

    # -- background thread ---------------------------------------------------

    def _run(self) -> None:
        interval = self.options.interval_s
        tick = min(_MAX_TICK_S, interval / 4)
        if self.options.every_packets is not None:
            tick = min(tick, 0.005)
        next_row = time.monotonic() + interval
        primed = False
        while not self._stop_event.wait(tick):
            try:
                self._drain()
                now = time.monotonic()
                if not primed and self._snapshots:
                    # First birth heartbeats: publish immediately so an
                    # early scrape never sees an empty registry.
                    primed = True
                    next_row = now
                if now >= next_row:
                    self._tick()
                    next_row = now + interval
            except Exception:  # pragma: no cover - defensive
                # The aggregator is observability: it must never take
                # the replay down. A poisoned tick skips one interval.
                continue

    def _drain(self) -> bool:
        """Pull every pending snapshot off every sidecar pipe."""
        with self._target_lock:
            return self._drain_locked()

    def _drain_locked(self) -> bool:
        changed = False
        conns = list(getattr(self.emulator, "live_conns", None) or [])
        for conn in conns:
            if conn is None:
                continue
            while True:
                try:
                    if not conn.poll(0):
                        break
                    snapshot = conn.recv()
                except (EOFError, OSError):
                    break
                shard = snapshot["shard"]
                self._snapshots[shard] = snapshot
                self._last_seen[shard] = time.monotonic()
                self._heartbeats[shard] = (
                    self._heartbeats.get(shard, 0) + 1
                )
                # A fresh heartbeat from a (re)spawned worker clears
                # the death-observed latch (see _update_liveness).
                self._forced_stale[shard] = False
                changed = True
                if self.options.every_packets is not None:
                    self._append_shard_row(snapshot)
        return changed

    # -- row/sample construction ---------------------------------------------

    def _append_shard_row(self, snapshot: dict) -> None:
        row = {
            "kind": "shard",
            "shard": snapshot["shard"],
            "seq": snapshot["seq"],
            "mono_s": round(time.monotonic() - self._start_mono, 6),
            "packets": snapshot["packets"],
            "dropped": snapshot["dropped"],
            "cache_hit_rate": _snapshot_hit_rate(snapshot),
            "demotions": dict(snapshot.get("demotions", {})),
            "columnar_packets": snapshot.get("columnar_packets", 0),
            "epoch": snapshot.get("epoch", 0),
        }
        row.update(_snapshot_quantiles(snapshot.get("hist")))
        self.recorder.append(row)

    def _shard_status(self) -> list[dict]:
        status = getattr(self.emulator, "live_shard_status", None)
        if status is None:  # pragma: no cover - duck-typed emulators
            return []
        return status()

    def _update_liveness(self, status: list[dict]) -> None:
        """Latch death observations into per-shard staleness flags.

        A kill+respawn can complete inside one sampling interval, so
        pure wall-clock staleness would race it. The supervisor's
        respawn counter is the deterministic witness: any bump since
        the shard's last heartbeat marks it stale until the *next*
        heartbeat arrives. Degraded (permanently dead) shards stay
        forced stale.
        """
        for entry in status:
            shard = entry["shard"]
            respawns = entry.get("respawns", 0)
            if respawns > self._seen_respawns.get(shard, 0):
                self._seen_respawns[shard] = respawns
                self._forced_stale[shard] = True
            if entry.get("dead"):
                self._forced_stale[shard] = True

    def sample(self) -> dict:
        """One merged view of the fleet: the watchdog's input."""
        with self._target_lock:
            return self._sample_locked()

    def _sample_locked(self) -> dict:
        now = time.monotonic()
        status = self._shard_status()
        self._update_liveness(status)
        carry = self._carry
        merged = Histogram()
        merged.merge(self._carry_hist)
        packets = carry["packets"]
        dropped = carry["dropped"]
        columnar_packets = carry["columnar_packets"]
        demotions: dict[str, int] = dict(self._carry_demotions)
        cache_totals: dict[str, list[int]] = {}
        native_hits = native_misses = 0
        for snapshot in self._snapshots.values():
            hist = snapshot.get("hist")
            if hist is not None:
                merged.merge(hist)
            packets += snapshot["packets"]
            dropped += snapshot["dropped"]
            columnar_packets += snapshot.get("columnar_packets", 0)
            for reason, count in snapshot.get("demotions", {}).items():
                demotions[reason] = demotions.get(reason, 0) + count
            for name, (h, m) in snapshot.get("caches", {}).items():
                totals = cache_totals.setdefault(name, [0, 0])
                totals[0] += h
                totals[1] += m
            native = snapshot.get("native")
            if native is not None:
                native_hits += native[0]
                native_misses += native[1]
        hits = (
            carry["cache_hits"]
            + native_hits
            + sum(t[0] for t in cache_totals.values())
        )
        lookups = (
            carry["cache_lookups"]
            + native_hits
            + native_misses
            + sum(t[0] + t[1] for t in cache_totals.values())
        )
        stalls = carry["ring_stalls"] + sum(
            e.get("ring_stalls", 0) for e in status
        )
        pushed = carry["ring_pushed_batches"] + sum(
            e.get("pushed_batches", 0) for e in status
        )
        shards: dict[int, dict] = {}
        for entry in status:
            shard = entry["shard"]
            snapshot = self._snapshots.get(shard)
            last = self._last_seen.get(shard, self._start_mono)
            shards[shard] = {
                "alive": entry.get("alive", False),
                "dead": entry.get("dead", False),
                "respawns": entry.get("respawns", 0),
                "heartbeat_staleness_s": now - last,
                "forced_stale": self._forced_stale.get(shard, False),
                "heartbeats": self._heartbeats.get(shard, 0),
                "seq": snapshot["seq"] if snapshot else None,
                "packets": snapshot["packets"] if snapshot else 0,
                "dropped": snapshot["dropped"] if snapshot else 0,
                "ring_occupancy": entry.get("ring_occupancy"),
                "ring_stalls": entry.get("ring_stalls", 0),
                "hist": snapshot.get("hist") if snapshot else None,
                "cache_hit_rate": (
                    _snapshot_hit_rate(snapshot) if snapshot else None
                ),
            }
        sample = {
            "packets": packets,
            "dropped": dropped,
            "cache_hit_rate": hits / lookups if lookups else None,
            "ring_stall_rate": stalls / pushed if pushed else 0.0,
            "ring_stalls": stalls,
            "ring_pushed_batches": pushed,
            "demotions": demotions,
            "columnar_packets": columnar_packets,
            "hist": merged,
            "shards": shards,
        }
        sample.update(_snapshot_quantiles(merged))
        sample["p99_latency_ns"] = sample["p99_ns"]
        sample["p50_latency_ns"] = sample["p50_ns"]
        sample["mean_latency_ns"] = sample["mean_ns"]
        return sample

    def _interval_row(self, sample: dict, final: bool) -> dict:
        shards = []
        for shard in sorted(sample["shards"]):
            entry = sample["shards"][shard]
            shard_row = {
                "shard": shard,
                "seq": entry["seq"],
                "packets": entry["packets"],
                "dropped": entry["dropped"],
                "alive": entry["alive"],
                "dead": entry["dead"],
                "respawns": entry["respawns"],
                "heartbeats": entry["heartbeats"],
                "age_s": round(entry["heartbeat_staleness_s"], 6),
                "ring_occupancy": entry["ring_occupancy"],
                "ring_stalls": entry["ring_stalls"],
                "cache_hit_rate": entry["cache_hit_rate"],
            }
            shard_row.update(_snapshot_quantiles(entry["hist"]))
            shards.append(shard_row)
        return {
            "kind": "interval",
            "final": final,
            "wall_s": time.time(),
            "mono_s": round(time.monotonic() - self._start_mono, 6),
            "packets": sample["packets"],
            "dropped": sample["dropped"],
            "p50_ns": sample["p50_ns"],
            "p99_ns": sample["p99_ns"],
            "mean_ns": sample["mean_ns"],
            "cache_hit_rate": sample["cache_hit_rate"],
            "ring_stalls": sample["ring_stalls"],
            "ring_stall_rate": sample["ring_stall_rate"],
            "demotions": sample["demotions"],
            "columnar_packets": sample["columnar_packets"],
            "events_emitted": self.events.emitted,
            "events_dropped": self.events.dropped,
            "slo_active": self.watchdog.active_breaches,
            "slo_breaches": self.watchdog.breaches,
            "slo_clears": self.watchdog.clears,
            "shards": shards,
        }

    def _tick(self, final: bool = False) -> None:
        sample = self.sample()
        self.watchdog.evaluate(sample)
        row = self._interval_row(sample, final)
        self.recorder.append(row)
        registry = self._build_registry(sample)
        with self._lock:
            self._registry = registry

    # -- SLO accounting ------------------------------------------------------

    def _on_slo_event(self, event: dict) -> None:
        rule = event.get("rule", "")
        if event.get("kind") == "slo_breach":
            self._rule_breaches[rule] = (
                self._rule_breaches.get(rule, 0) + 1
            )
        else:
            self._rule_clears[rule] = self._rule_clears.get(rule, 0) + 1

    # -- export --------------------------------------------------------------

    def _build_registry(self, sample: dict) -> MetricsRegistry:
        registry = MetricsRegistry()
        for shard in sorted(sample["shards"]):
            entry = sample["shards"][shard]
            registry.inc(
                "pipeleon_live_packets_total",
                entry["packets"],
                help="Packets replayed so far (live worker snapshots)",
                shard=shard,
            )
            registry.inc(
                "pipeleon_live_dropped_total",
                entry["dropped"],
                help="Packets dropped so far (live worker snapshots)",
                shard=shard,
            )
            registry.inc(
                "pipeleon_live_heartbeats_total",
                entry["heartbeats"],
                help="Worker snapshots received over the sidecar pipe",
                shard=shard,
            )
            registry.set_gauge(
                "pipeleon_live_heartbeat_age_s",
                entry["heartbeat_staleness_s"],
                help="Seconds since the shard's last snapshot",
                shard=shard,
            )
            registry.set_gauge(
                "pipeleon_live_worker_alive",
                1.0 if entry["alive"] else 0.0,
                help="Worker process liveness (1 = alive)",
                shard=shard,
            )
            registry.inc(
                "pipeleon_live_worker_respawns_total",
                entry["respawns"],
                help="Supervisor respawns observed for the shard",
                shard=shard,
            )
            if entry["ring_occupancy"] is not None:
                registry.set_gauge(
                    "pipeleon_live_ring_occupancy",
                    entry["ring_occupancy"],
                    help=(
                        "Current data-ring occupancy fraction "
                        "(shm transport)"
                    ),
                    shard=shard,
                )
            registry.inc(
                "pipeleon_live_ring_stalls_total",
                entry["ring_stalls"],
                help="Batch dispatches that stalled on a full ring",
                shard=shard,
            )
            hist = entry["hist"]
            if hist is not None and hist.count:
                registry.histogram(
                    "pipeleon_live_latency_ns",
                    help="Per-packet latency from live snapshots (ns)",
                    buckets=hist.buckets,
                    shard=shard,
                ).merge(hist)
        if sample["cache_hit_rate"] is not None:
            registry.set_gauge(
                "pipeleon_live_cache_hit_rate",
                sample["cache_hit_rate"],
                help="Merged flow-cache hit rate (live snapshots)",
            )
        registry.set_gauge(
            "pipeleon_live_ring_stall_rate",
            sample["ring_stall_rate"],
            help="Cumulative ring stalls per pushed batch",
        )
        for reason, count in sorted(sample["demotions"].items()):
            registry.inc(
                "pipeleon_live_columnar_demotions_total",
                count,
                help="Columnar demotions by reason (live snapshots)",
                reason=reason,
            )
        registry.inc(
            "pipeleon_live_columnar_packets_total",
            sample["columnar_packets"],
            help="Packets retired by columnar kernels (live snapshots)",
        )
        registry.inc(
            "pipeleon_live_fleet_packets_total",
            sample["packets"],
            help=(
                "Packets replayed across every fleet this aggregator "
                "has watched (monotone across redeploys)"
            ),
        )
        registry.inc(
            "pipeleon_live_fleet_dropped_total",
            sample["dropped"],
            help=(
                "Packets dropped across every fleet this aggregator "
                "has watched (monotone across redeploys)"
            ),
        )
        registry.inc(
            "pipeleon_live_fleets_total",
            self.fleets,
            help="Fleets adopted over the aggregator's lifetime",
        )
        from repro.telemetry.export import export_event_log

        export_event_log(registry, self.events)
        registry.inc(
            "pipeleon_flight_rows_total",
            self.recorder.appended,
            help="Flight-recorder rows appended",
        )
        registry.inc(
            "pipeleon_flight_sink_failures_total",
            self.recorder.sink_failures,
            help="Flight-recorder sink writes that failed",
        )
        for rule, count in sorted(self._rule_breaches.items()):
            registry.inc(
                "pipeleon_slo_breaches_total",
                count,
                help="SLO breach episodes by rule",
                rule=rule,
            )
        for rule, count in sorted(self._rule_clears.items()):
            registry.inc(
                "pipeleon_slo_clears_total",
                count,
                help="SLO breach episodes that cleared, by rule",
                rule=rule,
            )
        registry.set_gauge(
            "pipeleon_slo_active_breaches",
            len(self.watchdog.active_breaches),
            help="SLO rule scopes currently in breach",
        )
        return registry

    def prometheus(self) -> str:
        with self._lock:
            return self._registry.to_prometheus()

    def health(self) -> dict:
        row = self.recorder.last("interval")
        shards = row["shards"] if row else []
        degraded = bool(self.watchdog.active_breaches) or any(
            not s["alive"] for s in shards
        )
        return {
            "status": "degraded" if degraded else "ok",
            "rows": self.recorder.appended,
            "heartbeats": self._carry["heartbeats"]
            + sum(self._heartbeats.values()),
            "fleets": self.fleets,
            "active_breaches": self.watchdog.active_breaches,
            "slo_breaches": self.watchdog.breaches,
            "slo_clears": self.watchdog.clears,
            "shards": [
                {
                    "shard": s["shard"],
                    "alive": s["alive"],
                    "respawns": s["respawns"],
                    "packets": s["packets"],
                }
                for s in shards
            ],
        }


# ---------------------------------------------------------------------------
# Scrape endpoint
# ---------------------------------------------------------------------------


class MetricsServer:
    """`/metrics` (Prometheus text) + `/health` (JSON) on a thread.

    Binds ``host:port`` (port 0 picks an ephemeral port; read
    :attr:`port` after :meth:`start`). Serving runs on a daemon thread
    with a ``ThreadingHTTPServer``, so a slow scraper never blocks the
    replay — and the aggregator's lock bounds what a scrape can see to
    one consistent registry snapshot.
    """

    def __init__(
        self,
        aggregator: LiveAggregator,
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self.aggregator = aggregator
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        aggregator = self.aggregator

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence per-request noise
                pass

            def _send(self, code, content_type, body: bytes):
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        aggregator.prometheus().encode("utf-8"),
                    )
                elif path == "/health":
                    self._send(
                        200,
                        "application/json",
                        json.dumps(aggregator.health()).encode("utf-8"),
                    )
                else:
                    self._send(404, "text/plain", b"not found\n")

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    close = stop

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Daemon-lifetime plane
# ---------------------------------------------------------------------------


class LivePlane:
    """One aggregator + scrape endpoint outliving any single fleet.

    A plain replay owns its :class:`LiveAggregator` and
    :class:`MetricsServer` per deployment; ``repro serve`` instead
    creates one :class:`LivePlane` for the daemon's whole lifetime and
    hands it to every :class:`~repro.core.sharded.ShardedDeployment`
    (via ``live_plane=``) and to the controller, which re-adopts each
    redeployed fleet. Counters stay monotone across fleet generations
    (see :meth:`LiveAggregator.retarget`), and the ``/metrics`` port
    stays bound from daemon start to drain.

    Lifecycle: :meth:`start` once, then :meth:`adopt` / :meth:`release`
    around each deployment, then :meth:`stop` (idempotent, try/finally
    safe: the server is always torn down even if the aggregator's
    final flush raises).
    """

    def __init__(
        self,
        options: Optional[LiveOptions] = None,
        telemetry=None,
    ):
        self.options = options or LiveOptions()
        self.aggregator = LiveAggregator(
            emulator=None, telemetry=telemetry, options=self.options
        )
        self.server: Optional[MetricsServer] = None
        self._started = False
        self._stopped = False

    # Convenience passthroughs ------------------------------------------------

    @property
    def watchdog(self) -> SloWatchdog:
        return self.aggregator.watchdog

    @property
    def recorder(self) -> FlightRecorder:
        return self.aggregator.recorder

    @property
    def port(self) -> Optional[int]:
        return self.server.port if self.server is not None else None

    def start(self) -> "LivePlane":
        if self._started:
            return self
        self._started = True
        self.aggregator.start()
        if self.options.serve_port is not None:
            server = MetricsServer(
                self.aggregator,
                port=self.options.serve_port,
                host=self.options.serve_host,
            )
            try:
                server.start()
            except Exception:
                self.aggregator.stop()
                raise
            self.server = server
        return self

    def adopt(self, emulator) -> None:
        """Point the aggregator at a freshly deployed fleet."""
        self.aggregator.retarget(emulator)

    def release(self) -> None:
        """Detach from the current fleet *before* it is torn down.

        Folds the fleet's final totals into the carry base and clears
        per-shard liveness, so killing the old workers during a
        redeploy never reads as an SLO-visible death.
        """
        self.aggregator.retarget(None)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        try:
            if self.server is not None:
                self.server.stop()
        finally:
            self.server = None
            self.aggregator.stop()

    close = stop

    def __enter__(self) -> "LivePlane":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Terminal view (`repro top`)
# ---------------------------------------------------------------------------


def _fmt(value, width: int = 9, digits: int = 1) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{digits}f}".rjust(width)
    return str(value).rjust(width)


def render_top(rows: Sequence[dict], path: str = "") -> str:
    """Render flight-recorder rows as one refreshing terminal frame.

    Pure function of the rows (testable; ``repro top`` wraps it in a
    clear-screen refresh loop). Uses the latest ``interval`` row for
    the fleet header and per-shard table, and the trailing rows for
    the event ticker.
    """
    interval_rows = [r for r in rows if r.get("kind") == "interval"]
    lines: list[str] = []
    title = "repro top"
    if path:
        title += f" — {path}"
    lines.append(title)
    if not interval_rows:
        lines.append("(no interval rows yet)")
        return "\n".join(lines) + "\n"
    last = interval_rows[-1]
    lines.append(
        f"row {last.get('row', '?')}  t+{_fmt(last.get('mono_s'), 0, 1)}s"
        f"  packets {last['packets']}  dropped {last['dropped']}"
        f"  p50 {_fmt(last.get('p50_ns'), 0)}ns"
        f"  p99 {_fmt(last.get('p99_ns'), 0)}ns"
    )
    hit = last.get("cache_hit_rate")
    lines.append(
        f"cache hit {_fmt(hit, 0, 3) if hit is not None else '-'}"
        f"  ring stalls {last.get('ring_stalls', 0)}"
        f"  events {last.get('events_emitted', 0)}"
        f" (dropped {last.get('events_dropped', 0)})"
        f"  slo breaches {last.get('slo_breaches', 0)}"
        f"/clears {last.get('slo_clears', 0)}"
    )
    active = last.get("slo_active") or []
    if active:
        lines.append("SLO BREACHED: " + ", ".join(active))
    lines.append("")
    lines.append(
        "shard     packets   dropped    p50_ns    p99_ns   hit_rate"
        "     occ   stalls  beats  alive"
    )
    for shard in last.get("shards", []):
        occupancy = shard.get("ring_occupancy")
        lines.append(
            f"{shard['shard']:>5}"
            f"{_fmt(shard.get('packets', 0), 12)}"
            f"{_fmt(shard.get('dropped', 0), 10)}"
            f"{_fmt(shard.get('p50_ns'), 10)}"
            f"{_fmt(shard.get('p99_ns'), 10)}"
            f"{_fmt(shard.get('cache_hit_rate'), 11, 3)}"
            f"{_fmt(occupancy, 8, 2)}"
            f"{_fmt(shard.get('ring_stalls', 0), 9)}"
            f"{_fmt(shard.get('heartbeats', 0), 7)}"
            f"{'    yes' if shard.get('alive') else '     NO'}"
            + ("  (respawned)" if shard.get("respawns") else "")
        )
    history = interval_rows[-8:]
    if len(history) > 1:
        lines.append("")
        lines.append("recent intervals (packets / p99_ns):")
        lines.append(
            "  "
            + "  ".join(
                f"{r['packets']}/{_fmt(r.get('p99_ns'), 0)}"
                for r in history
            )
        )
    return "\n".join(lines) + "\n"
