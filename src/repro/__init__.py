"""Pipeleon reproduction: profile-guided P4 optimization for SmartNICs.

Reproduces "Unleashing SmartNIC Packet Processing Performance in P4"
(SIGCOMM 2023). Public entry points:

* :class:`repro.Pipeleon` -- the optimizer (plan / apply / source-to-source)
* :class:`repro.PipeleonController` -- the runtime adaptation loop
* :mod:`repro.ir` -- the P4 graph IR
* :mod:`repro.nic` -- the SmartNIC emulator substrate and target models
* :mod:`repro.traffic` -- workload generation
* :mod:`repro.apps` -- the evaluation programs
* :mod:`repro.synthesis` -- random program/profile synthesis
"""

from repro.core import (
    CostModel,
    Deployment,
    OptimizationPlan,
    Pipeleon,
    PipeleonController,
    ResourceBudget,
    RuntimeProfile,
    SearchOptions,
    uniform_profile,
)
from repro.ir import Program, ProgramBuilder
from repro.nic import (
    AGILIO_CX,
    BLUEFIELD2,
    EMULATED_NIC,
    NicEmulator,
    TargetModel,
)

__version__ = "0.1.0"

__all__ = [
    "AGILIO_CX",
    "BLUEFIELD2",
    "CostModel",
    "Deployment",
    "EMULATED_NIC",
    "NicEmulator",
    "OptimizationPlan",
    "Pipeleon",
    "PipeleonController",
    "Program",
    "ProgramBuilder",
    "ResourceBudget",
    "RuntimeProfile",
    "SearchOptions",
    "TargetModel",
    "__version__",
    "uniform_profile",
]
