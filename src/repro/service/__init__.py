"""Always-on adaptation service (``repro serve``) — ROADMAP item 5.

The paper's runtime controller (§5.3) adapts inside one scripted
replay; this package promotes it to a long-running, supervised daemon:

* :mod:`~repro.service.protocol` — the JSON-lines request/response
  framing spoken over a local AF_UNIX socket;
* :mod:`~repro.service.jobs` — the FIFO job queue whose single worker
  thread structurally serializes SLO-triggered replans against
  in-flight replay batches, with per-job cooperative cancellation;
* :mod:`~repro.service.session` — one supervised
  ``ShardedEmulator`` + :class:`~repro.core.controller.
  PipeleonController` pair plus the daemon-lifetime
  :class:`~repro.telemetry.live.LivePlane`, executing replay /
  optimize / report / status jobs over the string-seeded scenario
  library;
* :mod:`~repro.service.daemon` — the asyncio front-end: socket
  accept loop, op dispatch, SIGTERM-triggered graceful drain;
* :mod:`~repro.service.client` — the blocking client the ``repro
  call`` subcommand (and the tests) drive the daemon with.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.session import ServeSession, SessionConfig

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "ServeSession",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "SessionConfig",
]
