"""JSON-lines protocol spoken over the service's AF_UNIX socket.

One request per line, one response per line, both UTF-8 JSON objects:

* request — ``{"id": <any>, "op": <str>, "params": {...}}``. ``id`` is
  echoed verbatim in the response so clients may pipeline; ``params``
  is optional and defaults to ``{}``.
* response — ``{"id": ..., "ok": true, "result": {...}}`` on success,
  ``{"id": ..., "ok": false, "error": {"code": <str>,
  "message": <str>}}`` on failure.

Ops (dispatched by :class:`~repro.service.daemon.ServiceDaemon`):

===========  ==============================================================
``ping``     liveness probe; returns ``{"pong": true}``
``status``   session + queue snapshot (plan, SLO counters, jobs, ports)
``scenarios``  names the scenario library's builders
``submit``   enqueue a job: ``params={"op": "replay"|"optimize"|
             "report", ...}``; returns the job id immediately
``job``      one job's state/result: ``params={"job_id": ...}``
``wait``     block (bounded) until a job settles: ``params={"job_id",
             "timeout_s"}``
``cancel``   cooperative cancel: ``params={"job_id"}``
``drain``    stop accepting, cancel queued jobs, finish/cancel the
             running one, tear the session down, then exit
``shutdown`` alias for ``drain`` with ``cancel_running=True``
===========  ==============================================================

Framing is newline-delimited with a hard per-line ceiling — a client
that streams an unbounded line is disconnected rather than buffered.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
]

#: Requests and responses must fit one line under this many bytes.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A line that is not a well-formed request/response object."""


def encode(obj: dict) -> bytes:
    """One protocol object as a newline-terminated UTF-8 JSON line."""
    return (
        json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one received line into a protocol object."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(request_id: Any, result: Optional[dict] = None) -> dict:
    return {"id": request_id, "ok": True, "result": result or {}}


def error_response(
    request_id: Any, code: str, message: str
) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
