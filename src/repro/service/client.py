"""Blocking JSON-lines client for the serve-mode daemon.

Used by ``repro call``, the tests, and any script driving a daemon:
one AF_UNIX connection, synchronous request/response, convenience
wrappers per op. Thread-compatible but not thread-safe — use one
client per thread (connections are cheap; the daemon multiplexes).
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode,
)

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A response with ``ok: false``."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServiceClient:
    """One blocking connection to a serve-mode daemon."""

    def __init__(self, socket_path: str, timeout_s: float = 60.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(socket_path)
        self._buffer = b""
        self._next_id = 0

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request machinery ------------------------------------------------------

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ConnectionError("oversized response line")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def request(
        self, op: str, params: Optional[dict] = None
    ) -> dict:
        """Send one request, return its ``result``; raise on errors."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(
            encode(
                {"id": request_id, "op": op, "params": params or {}}
            )
        )
        response = decode_line(self._read_line())
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "unknown"),
                error.get("message", "unknown error"),
            )
        return response.get("result") or {}

    # -- op wrappers ------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def scenarios(self) -> list[str]:
        return self.request("scenarios")["scenarios"]

    def submit(self, job_op: str, **job_params: Any) -> str:
        """Enqueue a job; returns the job id."""
        result = self.request(
            "submit", {"op": job_op, "params": job_params}
        )
        return result["job_id"]

    def job(self, job_id: str) -> dict:
        return self.request("job", {"job_id": job_id})

    def wait(self, job_id: str, timeout_s: float = 300.0) -> dict:
        return self.request(
            "wait", {"job_id": job_id, "timeout_s": timeout_s}
        )

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", {"job_id": job_id})

    def drain(self) -> dict:
        return self.request("drain")

    def shutdown(self) -> dict:
        return self.request("shutdown")
