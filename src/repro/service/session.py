"""One serve-mode session: controller + fleet + daemon-lifetime plane.

A session owns exactly one supervised sharded fleet (via
:class:`~repro.core.controller.PipeleonController`, ``jobs > 1``) and
one :class:`~repro.telemetry.live.LivePlane` that outlives every
redeploy the controller performs — the scrape endpoint and SLO
watchdog run from daemon start to drain, not per replay.

Replay jobs stream phases from the string-seeded scenario library
(:mod:`repro.traffic.scenarios`) one emulated second at a time through
:meth:`~repro.core.controller.PipeleonController.scenario_tick`,
checking the job's cancel event between ticks and folding each tick's
merged :class:`~repro.nic.stats.RunStats` with
:meth:`~repro.nic.stats.RunStats.merge`. Because both the scenario and
the fault plan are pure functions of their string seeds and the merge
is fsum-exact, two same-seed sessions return bit-identical stats
fingerprints even when a worker is killed and respawned mid-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.nic.stats import RunStats

__all__ = ["ServeSession", "SessionConfig", "stats_payload"]


def stats_payload(stats: RunStats, target=None) -> dict:
    """JSON-safe RunStats view plus a bit-identity fingerprint.

    The fingerprint hashes the exact merged aggregates (floats as
    ``float.hex``, so every bit counts): two runs agree on it iff
    their merged stats are bit-identical — the serve-mode determinism
    acceptance check.
    """
    exact = {
        "packets": stats.packets,
        "dropped": stats.dropped,
        "migrations": stats.migrations,
        "total_bytes": stats.total_bytes,
        "lost_packets": stats.lost_packets,
        "total_latency_ns": stats.total_latency_ns.hex(),
        "p99_latency_ns": stats.percentile_latency_ns(99.0).hex(),
    }
    fingerprint = hashlib.sha256(
        json.dumps(exact, sort_keys=True).encode("utf-8")
    ).hexdigest()
    payload = {
        "packets": stats.packets,
        "dropped": stats.dropped,
        "migrations": stats.migrations,
        "total_bytes": stats.total_bytes,
        "lost_packets": stats.lost_packets,
        "mean_latency_ns": stats.mean_latency_ns,
        "p99_latency_ns": stats.percentile_latency_ns(99.0),
        "fingerprint": fingerprint,
    }
    if target is not None:
        payload["throughput_gbps"] = stats.throughput_gbps(target)
    return payload


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to stand a serve-mode session up."""

    app: str = "l2l3_acl"
    target: str = "bluefield2"
    jobs: int = 2
    transport: str = "shm"
    engine: str = "auto"
    #: Worker-failure policy + hang threshold for the supervisor.
    recovery: str = "respawn"
    recv_timeout_s: float = 60.0
    heartbeat_interval_s: float = 0.05
    #: Scripted fault specs (``kill:shard=0,batch=3`` …), armed on the
    #: session's first fleet only — FaultPlan semantics.
    faults: tuple[str, ...] = ()
    fault_seed: str = "0"
    #: Controller cadence/hysteresis.
    profile_period_s: float = 5.0
    offered_pps: float = 1e6
    replan_margin: float = 0.1
    controller_enabled: bool = True
    #: Live plane: wall cadence or deterministic packet cadence, SLO
    #: rules file, flight sink, scrape port (None = no HTTP endpoint).
    live_interval_s: float = 0.05
    live_every_packets: Optional[int] = None
    live_window: int = 512
    flight_path: Optional[str] = None
    slo_rules_path: Optional[str] = None
    serve_metrics_port: Optional[int] = None
    serve_metrics_host: str = "127.0.0.1"
    default_packets_per_tick: int = 300
    #: "optimized" deploys the statically-optimized layout at session
    #: start (deterministic: uniform-profile search). A session that
    #: starts from a real plan replans to *no change* under a stable
    #: workload — SLO-triggered replans then cannot perturb replay
    #: stats, which is what the serve-mode bit-identity check pins.
    #: "none" starts from the unoptimized program.
    baseline: str = "optimized"

    def __post_init__(self):
        if self.jobs < 2:
            raise ValueError(
                "serve mode needs jobs >= 2: the session supervises a "
                "sharded fleet (snapshots stream from shard workers)"
            )
        if self.baseline not in ("optimized", "none"):
            raise ValueError(
                f"baseline must be 'optimized' or 'none', "
                f"got {self.baseline!r}"
            )
        object.__setattr__(self, "faults", tuple(self.faults))


class ServeSession:
    """The daemon's long-lived controller/fleet/telemetry bundle."""

    def __init__(self, config: SessionConfig):
        from repro.apps import EXAMPLE_APPS
        from repro.core.controller import (
            ControllerOptions,
            PipeleonController,
        )
        from repro.nic.faults import FaultPlan
        from repro.nic.sharding import SupervisorOptions
        from repro.nic.targets import get_target
        from repro.telemetry import (
            LiveOptions,
            LivePlane,
            Telemetry,
            load_slo_rules,
        )

        self.config = config
        try:
            build, install = EXAMPLE_APPS[config.app]
        except KeyError:
            raise ValueError(
                f"unknown app {config.app!r} "
                f"(choose from {', '.join(sorted(EXAMPLE_APPS))})"
            ) from None
        self.target = get_target(config.target)
        rules = ()
        if config.slo_rules_path:
            rules = load_slo_rules(config.slo_rules_path)
        fault_plan = None
        if config.faults:
            fault_plan = FaultPlan.from_args(
                list(config.faults), seed=config.fault_seed
            )
        self.telemetry = Telemetry()
        self.live_plane = LivePlane(
            LiveOptions(
                interval_s=config.live_interval_s,
                every_packets=config.live_every_packets,
                window=config.live_window,
                flight_path=config.flight_path,
                rules=rules,
                serve_port=config.serve_metrics_port,
                serve_host=config.serve_metrics_host,
            ),
            telemetry=self.telemetry,
        )
        program = build()
        baseline_plan = None
        if config.baseline == "optimized":
            from repro.core import Pipeleon

            baseline_plan = Pipeleon(self.target).optimize(program)
        self.controller = None
        try:
            self.live_plane.start()
            self.controller = PipeleonController(
                program,
                self.target,
                options=ControllerOptions(
                    profile_period_s=config.profile_period_s,
                    offered_pps=config.offered_pps,
                    replan_margin=config.replan_margin,
                ),
                enabled=config.controller_enabled,
                baseline_plan=baseline_plan,
                jobs=config.jobs,
                telemetry=self.telemetry,
                supervisor=SupervisorOptions(
                    recovery=config.recovery,
                    recv_timeout_s=config.recv_timeout_s,
                    heartbeat_interval_s=config.heartbeat_interval_s,
                ),
                fault_plan=fault_plan,
                transport=config.transport,
                engine=config.engine,
                live_plane=self.live_plane,
            )
            install(self.controller.control_plane)
            self.controller.attach_slo_watchdog(self.live_plane.watchdog)
        except BaseException:
            self.close()
            raise
        self.replays = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        try:
            if self.controller is not None:
                self.controller.close()
        finally:
            try:
                self.live_plane.stop()
            finally:
                self.telemetry.close()

    @property
    def metrics_port(self) -> Optional[int]:
        return self.live_plane.port

    # -- job executors ---------------------------------------------------------

    def run_replay(self, params: dict, cancel_event=None) -> dict:
        """Stream one library scenario through the controller loop.

        ``params``: ``scenario`` (library name), ``seed`` (string),
        ``packets_per_tick``, plus builder keywords under ``kwargs``.
        Cancellation is honoured between ticks — never inside a replay
        batch — so a cancelled replay still returns exact merged stats
        for the ticks it completed.
        """
        from repro.traffic.scenarios import build_scenario

        name = params.get("scenario")
        if not name:
            raise ValueError("replay params need a 'scenario' name")
        seed = str(params.get("seed", "0"))
        packets_per_tick = int(
            params.get(
                "packets_per_tick", self.config.default_packets_per_tick
            )
        )
        scenario = build_scenario(
            name, seed=seed, **params.get("kwargs", {})
        )
        controller = self.controller
        controller.start_scenario()
        merged = RunStats()
        timeline: list[dict] = []
        ticks_run = 0
        reoptimized_ticks = 0
        cancelled = False
        for time_s, phase in scenario.ticks():
            if cancel_event is not None and cancel_event.is_set():
                cancelled = True
                break
            point, stats = controller.scenario_tick(
                time_s, phase, packets_per_tick
            )
            merged.merge(stats)
            ticks_run += 1
            if point.reoptimized:
                reoptimized_ticks += 1
            timeline.append(
                {
                    "time_s": point.time_s,
                    "phase": point.phase,
                    "throughput_gbps": point.throughput_gbps,
                    "mean_latency_ns": point.mean_latency_ns,
                    "reoptimized": point.reoptimized,
                }
            )
        self.replays += 1
        watchdog = self.live_plane.watchdog
        return {
            "scenario": scenario.name,
            "phases": scenario.describe(),
            "seed": seed,
            "packets_per_tick": packets_per_tick,
            "ticks": ticks_run,
            "cancelled": cancelled,
            "reoptimized_ticks": reoptimized_ticks,
            "stats": stats_payload(merged, self.target),
            "slo": {
                "breaches": watchdog.breaches,
                "clears": watchdog.clears,
                "active": watchdog.active_breaches,
            },
            "respawns": self.controller.deployment.worker_respawns,
            "timeline": timeline[-200:],
        }

    def run_optimize(self, params: dict, cancel_event=None) -> dict:
        """Profile + replan right now (the manual SLO trigger)."""
        controller = self.controller
        changed = controller.maybe_reoptimize()
        plan = controller.current_plan
        return {
            "changed": changed,
            "reoptimizations": controller.reoptimizations,
            "plan": plan.describe() if plan is not None else None,
        }

    def run_report(self, params: dict, cancel_event=None) -> dict:
        """Deterministic controller/session facts (no replay)."""
        controller = self.controller
        report = controller.cell_snapshot()
        report.update(
            {
                "replays": self.replays,
                "slo_breaches_seen": controller.slo_breaches_seen,
                "slo_breaches_suppressed": (
                    controller.slo_breaches_suppressed
                ),
                "events_emitted": self.telemetry.events.emitted,
                "flight_rows": self.live_plane.recorder.appended,
            }
        )
        return report

    def status(self) -> dict:
        """Cheap synchronous snapshot for the ``status`` op."""
        controller = self.controller
        watchdog = self.live_plane.watchdog
        plan = controller.current_plan
        return {
            "app": self.config.app,
            "target": self.config.target,
            "jobs": self.config.jobs,
            "engine": controller.engine,
            "transport": controller.transport,
            "plan": plan.describe() if plan is not None else None,
            "reoptimizations": controller.reoptimizations,
            "replays": self.replays,
            "slo_breaches": watchdog.breaches,
            "slo_clears": watchdog.clears,
            "slo_active": watchdog.active_breaches,
            "fleets": self.live_plane.aggregator.fleets,
            "metrics_port": self.metrics_port,
            "worker_respawns": (
                controller.deployment.worker_respawns
            ),
        }
