"""FIFO job queue with one worker thread and cooperative cancellation.

The single worker thread is the service's serialization point: a
replay job's batches, a periodic replan, and an SLO-triggered replan
all execute on it, one job at a time — a watchdog breach that lands
*mid-replay* merely sets the controller's pending flag, and the replay
job consumes it at its next tick boundary (see
:meth:`~repro.core.controller.PipeleonController.scenario_tick`).
Nothing ever replans concurrently with an in-flight batch, by
construction rather than by locking.

Cancellation is cooperative: :meth:`JobQueue.cancel` flips the job's
:attr:`Job.cancel_event`; job functions are expected to poll it at
safe points (scenario drivers poll between ticks) and return early.
A queued job cancels immediately without ever running.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Job", "JobQueue", "JobState", "QueueClosedError"]


class JobState:
    """String states a job moves through (terminal: the last three)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class QueueClosedError(RuntimeError):
    """Submit after drain started: the service is going away."""


@dataclass
class Job:
    """One unit of serialized service work."""

    id: str
    op: str
    params: dict
    fn: Callable[["Job"], Any]
    state: str = JobState.QUEUED
    result: Any = None
    error: Optional[str] = None
    #: Set to request cooperative cancellation; job functions poll it.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Set exactly once, when the job reaches a terminal state.
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def cancelled(self) -> bool:
        return self.cancel_event.is_set()

    def snapshot(self) -> dict:
        """JSON-safe view for the ``job``/``status`` ops."""
        return {
            "job_id": self.id,
            "op": self.op,
            "state": self.state,
            "error": self.error,
            "cancel_requested": self.cancel_event.is_set(),
        }


class JobQueue:
    """FIFO queue drained by one daemon worker thread."""

    def __init__(self, name: str = "repro-service-jobs"):
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._jobs: dict[str, Job] = {}
        self._running: Optional[Job] = None
        self._closed = False
        self._seq = 0
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        op: str,
        params: dict,
        fn: Callable[[Job], Any],
    ) -> Job:
        with self._wake:
            if self._closed:
                raise QueueClosedError("service is draining")
            self._seq += 1
            job = Job(id=f"job-{self._seq}", op=op, params=params, fn=fn)
            self._pending.append(job)
            self._jobs[job.id] = job
            self._wake.notify_all()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    # -- cancellation / drain ------------------------------------------------

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; queued jobs settle immediately."""
        with self._wake:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            if job.state == JobState.QUEUED:
                self._pending.remove(job)
                self._settle(job, JobState.CANCELLED)
        return job

    def drain(
        self,
        cancel_running: bool = False,
        timeout_s: Optional[float] = None,
    ) -> bool:
        """Reject new work, cancel the backlog, wait for quiescence.

        ``cancel_running=True`` (the SIGTERM path) additionally flips
        the in-flight job's cancel event so a long replay exits at its
        next tick boundary instead of running to completion. Returns
        True when the worker went idle within ``timeout_s``.
        """
        with self._wake:
            self._closed = True
            for job in list(self._pending):
                self._pending.remove(job)
                job.cancel_event.set()
                self._settle(job, JobState.CANCELLED)
            if cancel_running and self._running is not None:
                self._running.cancel_event.set()
            self._wake.notify_all()
        self._thread.join(timeout=timeout_s)
        return not self._thread.is_alive()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def running(self) -> Optional[Job]:
        with self._lock:
            return self._running

    @property
    def backlog(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- worker ----------------------------------------------------------------

    def _settle(self, job: Job, state: str) -> None:
        # Caller holds self._lock.
        job.state = state
        job.done_event.set()

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if not self._pending and self._closed:
                    return
                job = self._pending.pop(0)
                if job.cancel_event.is_set():
                    self._settle(job, JobState.CANCELLED)
                    continue
                job.state = JobState.RUNNING
                self._running = job
            try:
                result = job.fn(job)
            except Exception as exc:
                with self._wake:
                    job.error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    self._running = None
                    self._settle(job, JobState.FAILED)
            else:
                with self._wake:
                    job.result = result
                    self._running = None
                    self._settle(
                        job,
                        JobState.CANCELLED
                        if job.cancel_event.is_set()
                        else JobState.DONE,
                    )
