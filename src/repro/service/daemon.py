"""Asyncio front-end of the adaptation service (``repro serve``).

The daemon accepts JSON-lines requests over an AF_UNIX socket and
dispatches them against one :class:`~repro.service.session.
ServeSession` and one :class:`~repro.service.jobs.JobQueue`. The event
loop only ever does cheap work — parsing, queue bookkeeping, status
snapshots; every replay/optimize/report job runs on the queue's single
worker thread, which is what serializes SLO-triggered replans against
in-flight replay batches.

Shutdown paths, all converging on the same drain:

* ``drain`` op — graceful: reject new jobs, cancel the backlog, let
  the running job finish.
* ``shutdown`` op / SIGTERM / SIGINT — prompt: additionally flips the
  running job's cancel event, so a mid-flight replay exits at its next
  tick boundary (chaos faults included — the supervisor finishes any
  respawn recovery inside the tick it interrupted).

Either way the session closes after quiescence (fleet down, live
plane stopped, ``/metrics`` port released) and the socket file is
unlinked. On startup the daemon prints one ``ready`` JSON line with
the socket path, metrics port and pid, so scripts can wait for it.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import sys
from typing import Optional

from repro.service.jobs import JobQueue, QueueClosedError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.service.session import ServeSession

__all__ = ["ServiceDaemon"]

#: Job ops a ``submit`` request may name, mapped to session executors.
JOB_OPS = ("replay", "optimize", "report")


class ServiceDaemon:
    """One serve-mode daemon: socket, dispatcher, drain machinery."""

    def __init__(
        self,
        session: ServeSession,
        socket_path: str,
        ready_stream=None,
    ):
        self.session = session
        self.socket_path = socket_path
        self.queue = JobQueue()
        self._ready_stream = ready_stream or sys.stdout
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._finished = asyncio.Event()
        self._draining = False
        self.drained_cleanly = False

    # -- entry point -----------------------------------------------------------

    async def serve(self) -> None:
        """Run until a drain completes (op, SIGTERM or SIGINT)."""
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=MAX_LINE_BYTES + 2,
        )
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(
                    signum, self._begin_drain, True, f"signal:{signum}"
                )
        ready = {
            "event": "ready",
            "socket": self.socket_path,
            "pid": os.getpid(),
            "metrics_port": self.session.metrics_port,
        }
        print(json.dumps(ready), file=self._ready_stream, flush=True)
        try:
            await self._finished.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(
                    NotImplementedError, RuntimeError, ValueError
                ):
                    loop.remove_signal_handler(signum)
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    # -- drain -----------------------------------------------------------------

    def _begin_drain(self, cancel_running: bool, reason: str) -> None:
        """Idempotent: the first caller wins, later ones no-op."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain(cancel_running, reason)
        )

    async def _drain(self, cancel_running: bool, reason: str) -> None:
        # Stop accepting new connections first; in-flight responses on
        # open connections still go out.
        if self._server is not None:
            self._server.close()
        quiesced = await asyncio.to_thread(
            self.queue.drain, cancel_running, 60.0
        )
        try:
            await asyncio.to_thread(self.session.close)
        finally:
            self.drained_cleanly = quiesced
            self._finished.set()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ProtocolError as exc:
                    writer.write(
                        encode(error_response(None, "protocol", str(exc)))
                    )
                    await writer.drain()
                    break
                response = await self._dispatch(request)
                writer.write(encode(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: dict) -> dict:
        request_id = request.get("id")
        op = request.get("op")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return error_response(
                request_id, "bad_request", "params must be an object"
            )
        try:
            if op == "ping":
                return ok_response(request_id, {"pong": True})
            if op == "status":
                return ok_response(request_id, self._status())
            if op == "scenarios":
                from repro.traffic.scenarios import scenario_names

                return ok_response(
                    request_id, {"scenarios": scenario_names()}
                )
            if op == "submit":
                return self._submit(request_id, params)
            if op == "job":
                return self._job_state(request_id, params)
            if op == "wait":
                return await self._wait(request_id, params)
            if op == "cancel":
                return self._cancel(request_id, params)
            if op == "drain":
                self._begin_drain(False, "op:drain")
                return ok_response(request_id, {"draining": True})
            if op == "shutdown":
                self._begin_drain(True, "op:shutdown")
                return ok_response(
                    request_id, {"draining": True, "cancelling": True}
                )
            return error_response(
                request_id, "unknown_op", f"unknown op {op!r}"
            )
        except Exception as exc:  # noqa: BLE001 - boundary
            return error_response(request_id, "internal", str(exc))

    # -- op implementations ----------------------------------------------------

    def _status(self) -> dict:
        status = self.session.status()
        running = self.queue.running
        status["queue"] = {
            "draining": self._draining,
            "backlog": self.queue.backlog,
            "running": running.snapshot() if running else None,
            "jobs": [job.snapshot() for job in self.queue.jobs()],
        }
        return status

    def _submit(self, request_id, params: dict) -> dict:
        job_op = params.get("op")
        if job_op not in JOB_OPS:
            return error_response(
                request_id,
                "bad_request",
                f"submit op must be one of {', '.join(JOB_OPS)}",
            )
        job_params = params.get("params") or {}
        if not isinstance(job_params, dict):
            return error_response(
                request_id, "bad_request", "job params must be an object"
            )
        executor = {
            "replay": self.session.run_replay,
            "optimize": self.session.run_optimize,
            "report": self.session.run_report,
        }[job_op]

        def run(job):
            return executor(job.params, cancel_event=job.cancel_event)

        try:
            job = self.queue.submit(job_op, job_params, run)
        except QueueClosedError as exc:
            return error_response(request_id, "draining", str(exc))
        return ok_response(request_id, job.snapshot())

    def _job_state(self, request_id, params: dict) -> dict:
        job = self.queue.get(str(params.get("job_id", "")))
        if job is None:
            return error_response(
                request_id, "not_found", "no such job"
            )
        snapshot = job.snapshot()
        if job.done_event.is_set() and job.result is not None:
            snapshot["result"] = job.result
        return ok_response(request_id, snapshot)

    async def _wait(self, request_id, params: dict) -> dict:
        job = self.queue.get(str(params.get("job_id", "")))
        if job is None:
            return error_response(
                request_id, "not_found", "no such job"
            )
        timeout_s = float(params.get("timeout_s", 300.0))
        settled = await asyncio.to_thread(
            job.done_event.wait, timeout_s
        )
        if not settled:
            return error_response(
                request_id, "timeout", "job still running"
            )
        snapshot = job.snapshot()
        if job.result is not None:
            snapshot["result"] = job.result
        return ok_response(request_id, snapshot)

    def _cancel(self, request_id, params: dict) -> dict:
        job = self.queue.cancel(str(params.get("job_id", "")))
        if job is None:
            return error_response(
                request_id, "not_found", "no such job"
            )
        return ok_response(request_id, job.snapshot())
