"""Table copying (§3.2.4, Appendix A.2).

When packets would ping-pong between ASIC and CPU cores, Pipeleon copies
the tables needed by both onto the CPU side so software-bound traffic
finishes there without migrating back. The copy shares the original's
entries (the deployment layer mirrors them).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.transform.base import TransformResult
from repro.errors import TransformError
from repro.ir.conditionals import ConditionalNode
from repro.ir.program import Program
from repro.ir.tables import Pipeline, TableKind, TableNode


def copy_name(table: str, pipeline: Pipeline) -> str:
    return f"{table}__copy_{pipeline.value}"


def apply_copy(
    program: Program,
    table_name: str,
    to_pipeline: Pipeline = Pipeline.CPU,
) -> TransformResult:
    """Duplicate ``table_name`` onto ``to_pipeline``.

    Edges from nodes already on ``to_pipeline`` are rewired to the copy;
    everything else keeps using the original. Run this *before*
    ``apply_partition`` so migration plumbing reflects the final layout.
    """
    if table_name not in program.nodes:
        raise TransformError(f"No such table {table_name!r}")
    original = program.table(table_name)
    if original.kind is not TableKind.PLAIN:
        raise TransformError(
            f"Only plain tables can be copied, not {original.kind.value}"
        )
    if original.pipeline is to_pipeline:
        raise TransformError(
            f"Table {table_name!r} is already on {to_pipeline.value}"
        )
    cloned = program.clone()
    duplicate_name = copy_name(table_name, to_pipeline)
    if duplicate_name in cloned.nodes:
        raise TransformError(f"Node {duplicate_name!r} already exists")
    duplicate = cloned.table(table_name).clone(
        name=duplicate_name, pipeline=to_pipeline
    )
    duplicate.annotations["copy_of"] = table_name
    cloned.add(duplicate)
    for node in cloned.nodes.values():
        if node.name == duplicate_name or node.pipeline is not to_pipeline:
            continue
        if isinstance(node, TableNode):
            for action_name, nxt in node.next_map.items():
                if nxt == table_name:
                    node.next_map[action_name] = duplicate_name
        elif isinstance(node, ConditionalNode):
            if node.true_next == table_name:
                node.true_next = duplicate_name
            if node.false_next == table_name:
                node.false_next = duplicate_name
    return TransformResult(cloned, created=[duplicate_name])


def apply_copies(
    program: Program,
    table_names: Sequence[str],
    to_pipeline: Pipeline = Pipeline.CPU,
) -> TransformResult:
    """Copy several tables, accumulating into one result."""
    result = TransformResult(program.clone())
    for name in table_names:
        result.absorb(apply_copy(result.program, name, to_pipeline))
    return result


def copies_of(program: Program) -> dict[str, str]:
    """Map original table name -> copy name for installed copies."""
    mapping: dict[str, str] = {}
    for table in program.tables():
        source = table.annotations.get("copy_of")
        if source:
            mapping[str(source)] = table.name
    return mapping
