"""Pipeleon's program transformations (§3.2)."""

from repro.core.transform.base import (
    TransformResult,
    action_arity,
    composite_action,
    require_linear_run,
    union_match_fields,
)
from repro.core.transform.cache import (
    apply_cache,
    apply_group_cache,
    cache_name_for,
)
from repro.core.transform.copy import apply_copies, apply_copy, copies_of
from repro.core.transform.merge import (
    apply_merge,
    apply_naive_merge,
    merged_cache_entries,
    merged_name_for,
    naive_merged_entries,
)
from repro.core.transform.partition import (
    apply_partition,
    count_crossings,
    migration_name,
    navigation_name,
)
from repro.core.transform.reorder import apply_reorder, drop_rate_order

__all__ = [
    "TransformResult",
    "action_arity",
    "apply_cache",
    "apply_copies",
    "apply_copy",
    "apply_group_cache",
    "apply_merge",
    "apply_naive_merge",
    "apply_partition",
    "apply_reorder",
    "cache_name_for",
    "composite_action",
    "copies_of",
    "count_crossings",
    "drop_rate_order",
    "merged_cache_entries",
    "merged_name_for",
    "migration_name",
    "naive_merged_entries",
    "navigation_name",
    "require_linear_run",
    "union_match_fields",
]
