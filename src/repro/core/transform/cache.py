"""Table caching (§3.2.2).

Inserts an exact-match flow cache in front of a run of tables. Hits skip
the run (replaying the recorded effects); misses fall through to the
original tables and the observed effects are recorded, subject to the
cache's capacity (LRU) and insertion-rate limit. Unlike whole-program
flow caches, Pipeleon creates an adjustable *number* of caches, each
covering part of the program, to tame the cache-key cross-product and
invalidation problems.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.pipelets import PipeletGroup
from repro.core.transform.base import (
    TransformResult,
    require_linear_run,
    rewire_external_edges,
    union_match_fields,
)
from repro.errors import TransformError
from repro.ir.actions import Action
from repro.ir.program import Program
from repro.ir.tables import (
    CacheInfo,
    MatchKey,
    MatchType,
    TableKind,
    TableNode,
)

HIT_ACTION = "cache_hit"
MISS_ACTION = "cache_miss"


def cache_name_for(covers: Sequence[str]) -> str:
    return "cache__" + "__".join(covers)


def _build_cache_node(
    name: str,
    key_fields: Sequence[str],
    covers: Sequence[str],
    hit_next: Optional[str],
    miss_next: str,
    capacity: int,
    insertion_limit_pps: float,
    estimated_hit_rate: float,
    pipeline,
) -> TableNode:
    return TableNode(
        name=name,
        keys=tuple(MatchKey(f, MatchType.EXACT) for f in key_fields),
        actions={
            HIT_ACTION: Action(HIT_ACTION),
            MISS_ACTION: Action(MISS_ACTION),
        },
        default_action=MISS_ACTION,
        next_map={HIT_ACTION: hit_next, MISS_ACTION: miss_next},
        size=capacity,
        kind=TableKind.CACHE,
        pipeline=pipeline,
        cache_info=CacheInfo(
            covers=tuple(covers),
            hit_next=hit_next,
            miss_next=miss_next,
            mode="flow",
            capacity=capacity,
            insertion_limit_pps=insertion_limit_pps,
            estimated_hit_rate=estimated_hit_rate,
        ),
    )


def apply_cache(
    program: Program,
    covers: Sequence[str],
    capacity: int = 4096,
    insertion_limit_pps: float = 10000.0,
    estimated_hit_rate: float = 0.9,
    name: Optional[str] = None,
) -> TransformResult:
    """Insert a flow cache over the contiguous run ``covers``."""
    covers = list(covers)
    hit_next = require_linear_run(program, covers)
    cloned = program.clone()
    cache_name = name or cache_name_for(covers)
    if cache_name in cloned.nodes:
        raise TransformError(f"Node {cache_name!r} already exists")
    tables = [cloned.table(n) for n in covers]
    node = _build_cache_node(
        cache_name,
        union_match_fields(tables),
        covers,
        hit_next,
        covers[0],
        capacity,
        insertion_limit_pps,
        estimated_hit_rate,
        tables[0].pipeline,
    )
    cloned.add(node)
    rewire_external_edges(cloned, covers[0], cache_name, set(covers))
    result = TransformResult(cloned, created=[cache_name])
    # Hit/miss counters are cache telemetry, not original-program traffic.
    from repro.nic.counters import cache_counter

    result.counter_map.drop_counter(cache_counter(cache_name, True))
    result.counter_map.drop_counter(cache_counter(cache_name, False))
    return result


def apply_group_cache(
    program: Program,
    group: PipeletGroup,
    capacity: int = 4096,
    insertion_limit_pps: float = 10000.0,
    estimated_hit_rate: float = 0.9,
) -> TransformResult:
    """Cache across a branch diamond (pipelet-group optimization).

    The cache sits in front of the group's branch node; its key includes
    the branch's condition field so flows taking different sides get
    distinct cache entries. A hit jumps straight to the group's common
    exit, skipping the branch and whichever side the flow would take.
    """
    branch = program.nodes.get(group.branch)
    if branch is None:
        raise TransformError(f"No such branch {group.branch!r}")
    covers = list(group.table_names())
    if not covers:
        raise TransformError("Group has no tables to cache")
    cloned = program.clone()
    cache_name = f"gcache__{group.branch}"
    if cache_name in cloned.nodes:
        raise TransformError(f"Node {cache_name!r} already exists")
    tables = [cloned.table(n) for n in covers]
    key_fields = sorted(
        set(union_match_fields(tables))
        | cloned.node(group.branch).read_fields()
    )
    node = _build_cache_node(
        cache_name,
        key_fields,
        covers,
        group.exit_next,
        group.branch,
        capacity,
        insertion_limit_pps,
        estimated_hit_rate,
        tables[0].pipeline,
    )
    cloned.add(node)
    rewire_external_edges(
        cloned, group.branch, cache_name, set(covers)
    )
    result = TransformResult(cloned, created=[cache_name])
    from repro.nic.counters import cache_counter

    result.counter_map.drop_counter(cache_counter(cache_name, True))
    result.counter_map.drop_counter(cache_counter(cache_name, False))
    return result
