"""Table reordering (§3.2.1).

Moves high-drop tables earlier so dropped packets leave the pipeline as
soon as possible (run-to-completion cores fetch the next packet on drop,
unlike switch ASICs which carry a drop bit to the end). Reordering is
free in resources but only legal across dependency-free tables.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.profiling import RuntimeProfile
from repro.core.transform.base import TransformResult, rewire_external_edges
from repro.errors import TransformError
from repro.ir.dependency import order_is_valid
from repro.ir.program import Program
from repro.ir.tables import TableNode


def apply_reorder(
    program: Program,
    run: Sequence[str],
    order: Sequence[str],
    check_dependencies: bool = True,
) -> TransformResult:
    """Reorder the linear run ``run`` into ``order``.

    Works on a clone; the input program is untouched. The run must be a
    contiguous single-next chain (``require_linear_run`` semantics are
    implied by how the rewiring works, and dependencies are verified).
    """
    run = list(run)
    order = list(order)
    if sorted(run) != sorted(order):
        raise TransformError(
            f"Order {order} is not a permutation of {run}"
        )
    if run == order:
        return TransformResult(program.clone())
    tables = [program.table(name) for name in run]
    if check_dependencies and not order_is_valid(tables, order):
        raise TransformError(
            f"Order {order} violates table dependencies"
        )
    exit_next = _run_exit(program, run)
    cloned = program.clone()
    internal = set(run)
    rewire_external_edges(cloned, run[0], order[0], internal)
    for i, name in enumerate(order):
        node = cloned.table(name)
        nxt = order[i + 1] if i + 1 < len(order) else exit_next
        for action_name in node.next_map:
            node.next_map[action_name] = nxt
    return TransformResult(cloned)


def _run_exit(program: Program, run: Sequence[str]) -> str | None:
    last = program.table(run[-1])
    nexts = set(last.next_map.values())
    if len(nexts) != 1:
        raise TransformError(
            f"{run[-1]!r} is a switch-case table; cannot reorder"
        )
    return next(iter(nexts))


def drop_rate_order(
    tables: Sequence[TableNode], profile: RuntimeProfile
) -> tuple[str, ...]:
    """Greedy drop-rate-descending order that respects dependencies.

    Repeatedly picks, among tables whose dependencies are satisfied, the
    one with the highest current drop rate — the paper's "promote tables
    with higher dropping rates to earlier places".
    """
    from repro.ir.dependency import dependency_graph

    graph = dependency_graph(list(tables))
    by_name = {t.name: t for t in tables}
    remaining = set(by_name)
    order: list[str] = []
    while remaining:
        ready = [
            name
            for name in remaining
            if all(
                pred not in remaining
                for pred in graph.predecessors(name)
            )
        ]
        ready.sort(
            key=lambda name: (
                -profile.drop_rate(by_name[name]),
                name,
            )
        )
        chosen = ready[0]
        order.append(chosen)
        remaining.discard(chosen)
    return tuple(order)
