"""Shared machinery for program transformations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profiling import CounterMap
from repro.errors import TransformError
from repro.ir.actions import Action, ActionPrimitive, Param
from repro.ir.program import Program
from repro.ir.tables import TableKind, TableNode


@dataclass
class TransformResult:
    """Outcome of one transformation on a (cloned) program."""

    program: Program
    counter_map: CounterMap = field(default_factory=CounterMap)
    created: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)

    def absorb(self, other: "TransformResult") -> None:
        self.program = other.program
        self.counter_map.merge(other.counter_map)
        self.created.extend(other.created)
        self.removed.extend(other.removed)


def require_linear_run(program: Program, covers: list[str]) -> str | None:
    """Check ``covers`` is a contiguous single-next run of plain tables.

    Returns the node after the run (the hit_next). Raises
    :class:`TransformError` otherwise.
    """
    if not covers:
        raise TransformError("Empty table run")
    for i, name in enumerate(covers):
        if name not in program.nodes:
            raise TransformError(f"No such table {name!r}")
        node = program.node(name)
        if not isinstance(node, TableNode):
            raise TransformError(f"{name!r} is not a table")
        if node.kind is not TableKind.PLAIN:
            raise TransformError(
                f"{name!r} is a {node.kind.value} table; only plain "
                f"tables can be transformed"
            )
        nexts = set(node.next_map.values())
        if len(nexts) != 1:
            raise TransformError(
                f"{name!r} is a switch-case table; run must be linear"
            )
        nxt = next(iter(nexts))
        if i + 1 < len(covers):
            if nxt != covers[i + 1]:
                raise TransformError(
                    f"{name!r} does not flow into {covers[i + 1]!r}"
                )
    last = program.table(covers[-1])
    return next(iter(set(last.next_map.values())))


def rewire_external_edges(
    program: Program, old_entry: str, new_entry: str, internal: set[str]
) -> None:
    """Point all edges into ``old_entry`` from outside ``internal`` at
    ``new_entry`` (including the root pointer)."""
    for node in program.nodes.values():
        if node.name in internal or node.name == new_entry:
            continue
        if isinstance(node, TableNode):
            for action_name, nxt in node.next_map.items():
                if nxt == old_entry:
                    node.next_map[action_name] = new_entry
            # Cache/merged nodes route through cache_info, which must
            # stay consistent with next_map (the emulator follows it).
            if node.cache_info is not None:
                if node.cache_info.hit_next == old_entry:
                    node.cache_info.hit_next = new_entry
                if node.cache_info.miss_next == old_entry:
                    node.cache_info.miss_next = new_entry
        else:
            if node.true_next == old_entry:
                node.true_next = new_entry
            if node.false_next == old_entry:
                node.false_next = new_entry
    if program.root == old_entry:
        program.root = new_entry


def action_arity(action: Action) -> int:
    """Number of runtime action-data arguments the action consumes."""
    highest = -1
    for primitive in action.primitives:
        for arg in primitive.args:
            if isinstance(arg, Param):
                highest = max(highest, arg.index)
    return highest + 1


def shift_params(action: Action, offset: int) -> tuple[ActionPrimitive, ...]:
    """Re-index Param placeholders by ``offset`` (for composite actions)."""
    if offset == 0:
        return action.primitives
    shifted = []
    for primitive in action.primitives:
        args = tuple(
            Param(a.index + offset) if isinstance(a, Param) else a
            for a in primitive.args
        )
        shifted.append(ActionPrimitive(primitive.op, args))
    return tuple(shifted)


def composite_action(actions: list[Action], name: str | None = None) -> Action:
    """Concatenate actions, re-indexing their Params (table merging)."""
    primitives: list[ActionPrimitive] = []
    offset = 0
    for action in actions:
        primitives.extend(shift_params(action, offset))
        offset += action_arity(action)
    return Action(
        name or "+".join(a.name for a in actions), tuple(primitives)
    )


def composite_name(action_names: list[str]) -> str:
    return "+".join(action_names)


def union_match_fields(tables: list[TableNode]) -> tuple[str, ...]:
    """Sorted union of match fields (cache/merged table keys)."""
    fields: set[str] = set()
    for table in tables:
        fields.update(table.match_fields)
    return tuple(sorted(fields))
