"""Heterogeneous partitioning (§3.2.4).

Assigns program nodes to ASIC or CPU pipelines and inserts the paper's
navigation/migration table pair at every pipeline crossing: the migration
table stores the resume point in ``next_tab_id`` metadata before the
packet leaves a core, and the navigation table at the target pipeline's
entrance jumps straight to the stored table, restoring the processing
context that was lost when the packet left its previous core.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.transform.base import TransformResult
from repro.errors import TransformError
from repro.ir.actions import Action
from repro.ir.conditionals import ConditionalNode
from repro.ir.program import Program
from repro.ir.tables import (
    MatchKey,
    MatchType,
    Pipeline,
    TableKind,
    TableNode,
)

JUMP_ACTION = "nav_jump"
MIGRATE_ACTION = "migrate"


def navigation_name(pipeline: Pipeline) -> str:
    return f"nav__{pipeline.value}"


def migration_name(source: Pipeline, target_node: str) -> str:
    return f"mig__{source.value}__{target_node}"


def _navigation_node(pipeline: Pipeline) -> TableNode:
    return TableNode(
        name=navigation_name(pipeline),
        keys=(MatchKey("meta.next_tab_id", MatchType.EXACT),),
        actions={JUMP_ACTION: Action(JUMP_ACTION)},
        default_action=JUMP_ACTION,
        next_map={JUMP_ACTION: None},
        size=1024,
        kind=TableKind.NAVIGATION,
        pipeline=pipeline,
    )


def _migration_node(
    source: Pipeline, target_node: str, target_pipeline: Pipeline
) -> TableNode:
    return TableNode(
        name=migration_name(source, target_node),
        keys=(),
        actions={MIGRATE_ACTION: Action(MIGRATE_ACTION)},
        default_action=MIGRATE_ACTION,
        next_map={MIGRATE_ACTION: navigation_name(target_pipeline)},
        size=1,
        kind=TableKind.MIGRATION,
        pipeline=source,
        annotations={"resume": target_node},
    )


def apply_partition(
    program: Program,
    assignments: Mapping[str, Pipeline],
) -> TransformResult:
    """Assign pipelines and insert navigation/migration plumbing.

    ``assignments`` maps node names to pipelines; unmentioned nodes keep
    their current pipeline. Every edge crossing pipelines is routed
    through a migration table (source side) and the target pipeline's
    navigation table.
    """
    for name in assignments:
        if name not in program.nodes:
            raise TransformError(f"No such node {name!r}")
    cloned = program.clone()
    for name, pipeline in assignments.items():
        cloned.node(name).pipeline = pipeline

    created: list[str] = []

    def pipeline_of(name: str) -> Pipeline:
        return cloned.node(name).pipeline

    def ensure_navigation(pipeline: Pipeline) -> str:
        nav = navigation_name(pipeline)
        if nav not in cloned.nodes:
            cloned.add(_navigation_node(pipeline))
            created.append(nav)
        return nav

    def route(source_name: str, target: str | None) -> str | None:
        """Route one edge through migration plumbing if it crosses."""
        if target is None or target not in cloned.nodes:
            return target
        source_pipeline = pipeline_of(source_name)
        target_pipeline = pipeline_of(target)
        if source_pipeline is target_pipeline:
            return target
        target_node = cloned.node(target)
        if isinstance(target_node, TableNode) and target_node.kind in (
            TableKind.NAVIGATION,
            TableKind.MIGRATION,
        ):
            return target
        ensure_navigation(target_pipeline)
        mig = migration_name(source_pipeline, target)
        if mig not in cloned.nodes:
            cloned.add(
                _migration_node(source_pipeline, target, target_pipeline)
            )
            created.append(mig)
        return mig

    for name in list(cloned.nodes):
        node = cloned.nodes[name]
        if isinstance(node, TableNode):
            if node.kind in (TableKind.NAVIGATION, TableKind.MIGRATION):
                continue
            for action_name, nxt in list(node.next_map.items()):
                node.next_map[action_name] = route(name, nxt)
            if node.cache_info is not None:
                info = node.cache_info
                info.hit_next = route(name, info.hit_next)
                info.miss_next = route(name, info.miss_next) or info.miss_next
        elif isinstance(node, ConditionalNode):
            node.true_next = route(name, node.true_next)
            node.false_next = route(name, node.false_next)

    return TransformResult(cloned, created=created)


def count_crossings(program: Program) -> int:
    """Static count of pipeline-crossing edges (before plumbing)."""
    crossing_pairs = set()
    for src, dst, _label in program.edges():
        if dst is None or dst not in program.nodes:
            continue
        if program.node(src).pipeline is not program.node(dst).pipeline:
            crossing_pairs.add((src, dst))
    return len(crossing_pairs)
