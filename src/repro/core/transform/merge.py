"""Table merging (§3.2.3, Figure 6).

Merging performs several tables' actions with one key match. The naive
merge of exact tables must add wildcard rows for hit/miss combinations,
turning the merged table *ternary* and potentially slower — so Pipeleon
instead emits the merged table as an **exact cache without ternary
entries**: it holds only hit x hit combinations (pre-computed from the
covered tables' entries, never populated at runtime) and packets that
miss fall back to the original tables.

Both variants are implemented; the naive one serves as an ablation
baseline showing the negative-improvement case the paper warns about.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.core.transform.base import (
    TransformResult,
    composite_action,
    require_linear_run,
    rewire_external_edges,
    union_match_fields,
)
from repro.errors import TransformError
from repro.ir.actions import Action
from repro.ir.entries import ExactValue, TableEntry, TernaryValue
from repro.ir.program import Program
from repro.ir.tables import (
    CacheInfo,
    MatchKey,
    MatchType,
    TableKind,
    TableNode,
)

MISS_ACTION = "merged_miss"
FULL_MASK = 0xFFFFFFFF


def merged_name_for(covers: Sequence[str]) -> str:
    return "merged__" + "__".join(covers)


def _check_mergeable(program: Program, covers: Sequence[str]) -> None:
    for name in covers:
        table = program.table(name)
        if any(k.match_type is not MatchType.EXACT for k in table.keys):
            raise TransformError(
                f"Table {name!r} has non-exact keys; Pipeleon merges "
                f"small exact tables only"
            )


def _composite_actions(
    tables: list[TableNode],
) -> dict[str, Action]:
    """All hit x hit composite actions across the covered tables."""
    composites: dict[str, Action] = {}
    action_lists = [list(t.actions.values()) for t in tables]
    for combo in itertools.product(*action_lists):
        action = composite_action(list(combo))
        composites[action.name] = action
    return composites


def apply_merge(
    program: Program,
    covers: Sequence[str],
    capacity: Optional[int] = None,
    name: Optional[str] = None,
) -> TransformResult:
    """Pipeleon-style merge: merged exact cache with fallback."""
    covers = list(covers)
    if len(covers) < 2:
        raise TransformError("Merging needs at least two tables")
    _check_mergeable(program, covers)
    hit_next = require_linear_run(program, covers)
    cloned = program.clone()
    merged_name = name or merged_name_for(covers)
    if merged_name in cloned.nodes:
        raise TransformError(f"Node {merged_name!r} already exists")
    tables = [cloned.table(n) for n in covers]
    actions = _composite_actions(tables)
    actions[MISS_ACTION] = Action(MISS_ACTION)
    next_map: dict[str, Optional[str]] = {
        action_name: hit_next for action_name in actions
    }
    next_map[MISS_ACTION] = covers[0]
    if capacity is None:
        capacity = 1
        for table in tables:
            capacity *= max(1, table.size)
        capacity = min(capacity, 1 << 20)
    node = TableNode(
        name=merged_name,
        keys=tuple(
            MatchKey(f, MatchType.EXACT)
            for f in union_match_fields(tables)
        ),
        actions=actions,
        default_action=MISS_ACTION,
        next_map=next_map,
        size=capacity,
        kind=TableKind.MERGED,
        pipeline=tables[0].pipeline,
        cache_info=CacheInfo(
            covers=tuple(covers),
            hit_next=hit_next,
            miss_next=covers[0],
            mode="merge",
            capacity=capacity,
        ),
    )
    cloned.add(node)
    rewire_external_edges(cloned, covers[0], merged_name, set(covers))
    result = TransformResult(cloned, created=[merged_name])
    from repro.nic.counters import cache_counter

    result.counter_map.drop_counter(cache_counter(merged_name, True))
    result.counter_map.drop_counter(cache_counter(merged_name, False))
    return result


def apply_naive_merge(
    program: Program,
    covers: Sequence[str],
    name: Optional[str] = None,
) -> TransformResult:
    """Figure 6's naive merge: one ternary table replacing the originals.

    Wildcard rows express hit/miss combinations, so the merged table's
    entries are ternary and the match can be *slower* than the originals
    — the ablation case Pipeleon avoids.
    """
    covers = list(covers)
    if len(covers) < 2:
        raise TransformError("Merging needs at least two tables")
    _check_mergeable(program, covers)
    hit_next = require_linear_run(program, covers)
    cloned = program.clone()
    merged_name = name or ("tmerged__" + "__".join(covers))
    if merged_name in cloned.nodes:
        raise TransformError(f"Node {merged_name!r} already exists")
    tables = [cloned.table(n) for n in covers]
    # Composites over (any action or the default) of each table.
    composites: dict[str, Action] = {}
    action_lists = [list(t.actions.values()) for t in tables]
    for combo in itertools.product(*action_lists):
        action = composite_action(list(combo))
        composites[action.name] = action
    default_combo = composite_action(
        [t.actions[t.default_action] for t in tables]
    )
    composites[default_combo.name] = default_combo
    node = TableNode(
        name=merged_name,
        keys=tuple(
            MatchKey(f, MatchType.TERNARY)
            for f in union_match_fields(tables)
        ),
        actions=composites,
        default_action=default_combo.name,
        next_map={a: hit_next for a in composites},
        size=max(1024, sum(t.size for t in tables) ** 2),
        kind=TableKind.PLAIN,
        pipeline=tables[0].pipeline,
        annotations={"naive_merge_of": list(covers)},
    )
    cloned.add(node)
    rewire_external_edges(cloned, covers[0], merged_name, set(covers))
    for covered in covers:
        cloned.remove(covered)
    return TransformResult(
        cloned, created=[merged_name], removed=list(covers)
    )


# ---------------------------------------------------------------------------
# Entry materialisation (used by the deployment layer / EntryMapper)
# ---------------------------------------------------------------------------


def merged_cache_entries(
    merged: TableNode,
    covered_tables: list[TableNode],
    covered_entries: list[list[TableEntry]],
) -> list[TableEntry]:
    """Cross-product hit x hit entries for a Pipeleon merged cache.

    Combinations whose entries disagree on a shared match field are
    contradictions and are skipped. The merged key order follows the
    merged table's (sorted) key fields.
    """
    key_fields = merged.match_fields
    results: list[TableEntry] = []
    for combo in itertools.product(*covered_entries):
        values: dict[str, int] = {}
        conflict = False
        for table, entry in zip(covered_tables, combo):
            for match_key, value in zip(table.keys, entry.match_values):
                assert isinstance(value, ExactValue)
                existing = values.get(match_key.field)
                if existing is not None and existing != value.value:
                    conflict = True
                    break
                values[match_key.field] = value.value
            if conflict:
                break
        if conflict:
            continue
        action_name = "+".join(e.action_name for e in combo)
        if action_name not in merged.actions:
            continue
        action_data: list = []
        for table, entry in zip(covered_tables, combo):
            from repro.core.transform.base import action_arity

            arity = action_arity(table.actions[entry.action_name])
            data = list(entry.action_data[:arity])
            data += [0] * (arity - len(data))
            action_data.extend(data)
        results.append(
            TableEntry(
                match_values=tuple(
                    ExactValue(values[f]) for f in key_fields
                ),
                action_name=action_name,
                action_data=tuple(action_data),
            )
        )
        if len(results) >= merged.size:
            break
    return results


def naive_merged_entries(
    merged: TableNode,
    covered_tables: list[TableNode],
    covered_entries: list[list[TableEntry]],
) -> list[TableEntry]:
    """Figure 6 semantics: ternary cross product including wildcard rows.

    Each covered table contributes its entries *plus* a wildcard row
    standing for "missed" (executing the default action); priority is
    the number of non-wildcard components, so more-specific rows win.
    """
    key_fields = merged.match_fields
    options: list[list[tuple[Optional[TableEntry], TableNode]]] = []
    for table, entries in zip(covered_tables, covered_entries):
        rows: list[tuple[Optional[TableEntry], TableNode]] = [
            (entry, table) for entry in entries
        ]
        rows.append((None, table))  # the miss / wildcard row
        options.append(rows)

    results: list[TableEntry] = []
    for combo in itertools.product(*options):
        values: dict[str, tuple[int, int]] = {}  # field -> (value, mask)
        conflict = False
        priority = 0
        action_names: list[str] = []
        action_data: list = []
        for entry, table in combo:
            if entry is None:
                default = table.actions[table.default_action]
                action_names.append(default.name)
                from repro.core.transform.base import action_arity

                action_data.extend([0] * action_arity(default))
                continue
            priority += 1
            action_names.append(entry.action_name)
            from repro.core.transform.base import action_arity

            arity = action_arity(table.actions[entry.action_name])
            data = list(entry.action_data[:arity])
            data += [0] * (arity - len(data))
            action_data.extend(data)
            for match_key, value in zip(table.keys, entry.match_values):
                assert isinstance(value, ExactValue)
                existing = values.get(match_key.field)
                if (
                    existing is not None
                    and existing != (value.value, FULL_MASK)
                ):
                    conflict = True
                    break
                values[match_key.field] = (value.value, FULL_MASK)
            if conflict:
                break
        if conflict:
            continue
        action_name = "+".join(action_names)
        if action_name not in merged.actions:
            continue
        match_values = tuple(
            TernaryValue(*values.get(f, (0, 0))) for f in key_fields
        )
        results.append(
            TableEntry(
                match_values=match_values,
                action_name=action_name,
                action_data=tuple(action_data),
                priority=priority,
            )
        )
    # The all-wildcard row duplicates the default action; drop it.
    return [
        e
        for e in results
        if not all(
            isinstance(v, TernaryValue) and v.is_wildcard
            for v in e.match_values
        )
    ]
