"""Runtime profiles: what Pipeleon knows about the live workload.

A :class:`RuntimeProfile` captures everything §3.1's cost model needs:
per-table action probabilities (hence drop rates), branch probabilities,
entry counts and measured ``m`` values, entry-update rates, and cache hit
rates. Profiles are always expressed against the *original* program;
:class:`CounterMap` translates counters read from the optimized program
back to original-program coordinates (§4.1.2's "counter map").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.ir.entries import (
    distinct_masks,
    distinct_prefix_lengths,
)
from repro.ir.program import Program
from repro.ir.tables import MatchType, TableKind, TableNode
from repro.nic.counters import CounterKey

#: Default ``m`` assumed per match type before any entries are observed
#: (the paper measured with 3 LPM prefixes and 5 ternary masks).
DEFAULT_M: Mapping[MatchType, int] = {
    MatchType.EXACT: 1,
    MatchType.LPM: 3,
    MatchType.TERNARY: 5,
    MatchType.RANGE: 4,
}


@dataclass
class RuntimeProfile:
    """Workload knowledge used by the cost model and the optimizer."""

    action_probs: dict[str, dict[str, float]] = field(default_factory=dict)
    branch_probs: dict[str, float] = field(default_factory=dict)
    entry_counts: dict[str, int] = field(default_factory=dict)
    update_rates: dict[str, float] = field(default_factory=dict)
    table_m: dict[str, int] = field(default_factory=dict)
    cache_hit_rates: dict[str, float] = field(default_factory=dict)
    #: Offered load estimate, used to bound cache-insertion overheads.
    offered_pps: float = 1e6
    #: Observation counts backing each probability map (sufficient
    #: statistics). They make profiles *mergeable*: a support-weighted
    #: average of per-shard probabilities equals the probabilities the
    #: pooled counters would have produced, so the controller can
    #: profile each shard independently and combine.
    action_support: dict[str, float] = field(default_factory=dict)
    branch_support: dict[str, float] = field(default_factory=dict)
    cache_support: dict[str, float] = field(default_factory=dict)

    # -- reads with sensible defaults ---------------------------------------

    def action_prob(self, table: TableNode, action_name: str) -> float:
        probs = self.action_probs.get(table.name)
        if probs is None or not probs:
            return 1.0 / max(1, len(table.actions))
        return probs.get(action_name, 0.0)

    def branch_prob(self, conditional_name: str) -> float:
        return self.branch_probs.get(conditional_name, 0.5)

    def drop_rate(self, table: TableNode) -> float:
        """P(packet dropped | packet reaches the table)."""
        return sum(
            self.action_prob(table, name)
            for name, action in table.actions.items()
            if action.drops
        )

    def hit_prob(self, table: TableNode) -> float:
        """P(an installed entry matched) = 1 - P(default action).

        Used to estimate merged-table hit rates (all covered tables must
        hit for the merged cross-product entry to exist).
        """
        return max(
            0.0, 1.0 - self.action_prob(table, table.default_action)
        )

    def m_for(self, table: TableNode) -> int:
        measured = self.table_m.get(table.name)
        if measured is not None:
            return measured
        return DEFAULT_M[table.worst_match_type]

    def entry_count(self, table_name: str) -> int:
        return self.entry_counts.get(table_name, 0)

    def update_rate(self, table_name: str) -> float:
        return self.update_rates.get(table_name, 0.0)

    def cache_hit_rate(self, cache_name: str, default: float) -> float:
        return self.cache_hit_rates.get(cache_name, default)

    # -- mutation helpers -----------------------------------------------------

    def copy(self) -> "RuntimeProfile":
        return RuntimeProfile(
            action_probs={
                t: dict(p) for t, p in self.action_probs.items()
            },
            branch_probs=dict(self.branch_probs),
            entry_counts=dict(self.entry_counts),
            update_rates=dict(self.update_rates),
            table_m=dict(self.table_m),
            cache_hit_rates=dict(self.cache_hit_rates),
            offered_pps=self.offered_pps,
            action_support=dict(self.action_support),
            branch_support=dict(self.branch_support),
            cache_support=dict(self.cache_support),
        )

    def merge(self, other: "RuntimeProfile") -> "RuntimeProfile":
        """Fold another shard's profile into this one (associative).

        Probabilities combine as support-weighted averages — exactly the
        probabilities that pooling the underlying counters would yield
        (a profile with no recorded support counts as one observation).
        Control-plane-authoritative facts (entry counts, measured ``m``,
        update rates) are global, not per-shard, so they combine by max;
        per-shard offered loads sum.
        """
        for table, theirs in other.action_probs.items():
            weight_other = other.action_support.get(table, 1.0)
            mine = self.action_probs.get(table)
            if mine is None:
                self.action_probs[table] = dict(theirs)
                self.action_support[table] = weight_other
                continue
            weight_self = self.action_support.get(table, 1.0)
            total = weight_self + weight_other
            if total > 0:
                self.action_probs[table] = {
                    action: (
                        mine.get(action, 0.0) * weight_self
                        + theirs.get(action, 0.0) * weight_other
                    )
                    / total
                    for action in set(mine) | set(theirs)
                }
            else:
                # Both sides zero-support: keep the key union at 0.0.
                self.action_probs[table] = {
                    action: 0.0 for action in set(mine) | set(theirs)
                }
            self.action_support[table] = total
        for branch, prob_other in other.branch_probs.items():
            weight_other = other.branch_support.get(branch, 1.0)
            if branch not in self.branch_probs:
                self.branch_probs[branch] = prob_other
                self.branch_support[branch] = weight_other
                continue
            weight_self = self.branch_support.get(branch, 1.0)
            total = weight_self + weight_other
            if total > 0:
                self.branch_probs[branch] = (
                    self.branch_probs[branch] * weight_self
                    + prob_other * weight_other
                ) / total
            self.branch_support[branch] = total
        for cache, rate_other in other.cache_hit_rates.items():
            weight_other = other.cache_support.get(cache, 1.0)
            if cache not in self.cache_hit_rates:
                self.cache_hit_rates[cache] = rate_other
                self.cache_support[cache] = weight_other
                continue
            weight_self = self.cache_support.get(cache, 1.0)
            total = weight_self + weight_other
            if total > 0:
                self.cache_hit_rates[cache] = (
                    self.cache_hit_rates[cache] * weight_self
                    + rate_other * weight_other
                ) / total
            self.cache_support[cache] = total
        for table, count in other.entry_counts.items():
            self.entry_counts[table] = max(
                self.entry_counts.get(table, 0), count
            )
        for table, m in other.table_m.items():
            self.table_m[table] = max(self.table_m.get(table, 0), m)
        for table, rate in other.update_rates.items():
            self.update_rates[table] = max(
                self.update_rates.get(table, 0.0), rate
            )
        self.offered_pps += other.offered_pps
        return self

    def set_action_probs(
        self, table_name: str, probs: Mapping[str, float]
    ) -> None:
        total = sum(probs.values())
        if total <= 0:
            raise ValueError(
                f"Action probabilities for {table_name!r} sum to 0"
            )
        self.action_probs[table_name] = {
            name: p / total for name, p in probs.items()
        }

    def distance(self, other: "RuntimeProfile") -> float:
        """L1-style drift between two profiles (re-optimization trigger)."""
        drift = 0.0
        tables = set(self.action_probs) | set(other.action_probs)
        for table in tables:
            mine = self.action_probs.get(table, {})
            theirs = other.action_probs.get(table, {})
            for action in set(mine) | set(theirs):
                drift += abs(
                    mine.get(action, 0.0) - theirs.get(action, 0.0)
                )
        branches = set(self.branch_probs) | set(other.branch_probs)
        for branch in branches:
            drift += abs(
                self.branch_probs.get(branch, 0.5)
                - other.branch_probs.get(branch, 0.5)
            )
        return drift


def uniform_profile(program: Program, **overrides: object) -> RuntimeProfile:
    """A neutral profile: uniform actions, 50/50 branches, empty tables."""
    profile = RuntimeProfile()
    for table in program.tables():
        if table.kind is not TableKind.PLAIN:
            continue
        n = max(1, len(table.actions))
        profile.action_probs[table.name] = {
            name: 1.0 / n for name in table.actions
        }
    for conditional in program.conditionals():
        profile.branch_probs[conditional.name] = 0.5
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


# ---------------------------------------------------------------------------
# Counter translation
# ---------------------------------------------------------------------------


class CounterMap:
    """Maps optimized-program counters back to original-program counters.

    ``mapping[optimized_key] = [(original_key, weight), ...]``; counters
    absent from the mapping translate as identity. Weights support merged
    tables where one composite-action counter contributes to several
    original action counters.
    """

    def __init__(self) -> None:
        self.mapping: dict[
            CounterKey, list[tuple[CounterKey, float]]
        ] = {}

    def map_counter(
        self,
        optimized: CounterKey,
        originals: Iterable[tuple[CounterKey, float]],
    ) -> None:
        self.mapping[optimized] = list(originals)

    def drop_counter(self, optimized: CounterKey) -> None:
        """Exclude an optimized counter from translation entirely."""
        self.mapping[optimized] = []

    def translate(
        self, snapshot: Mapping[CounterKey, int]
    ) -> dict[CounterKey, float]:
        translated: dict[CounterKey, float] = {}
        for key, count in snapshot.items():
            targets = self.mapping.get(key)
            if targets is None:
                translated[key] = translated.get(key, 0.0) + count
                continue
            for original, weight in targets:
                translated[original] = (
                    translated.get(original, 0.0) + count * weight
                )
        return translated

    def merge(self, other: "CounterMap") -> None:
        self.mapping.update(other.mapping)


# ---------------------------------------------------------------------------
# Profile collection
# ---------------------------------------------------------------------------


def profile_from_counts(
    program: Program,
    counts: Mapping[CounterKey, float],
    offered_pps: float = 1e6,
) -> RuntimeProfile:
    """Build probabilities from (translated) counter readings."""
    profile = RuntimeProfile(offered_pps=offered_pps)
    per_table: dict[str, dict[str, float]] = {}
    per_branch: dict[str, dict[str, float]] = {}
    for key, count in counts.items():
        if key[0] == "action":
            _, table, action = key
            per_table.setdefault(table, {})[action] = (
                per_table.get(table, {}).get(action, 0.0) + count
            )
        elif key[0] == "branch":
            _, cond, leg = key
            per_branch.setdefault(cond, {})[leg] = (
                per_branch.get(cond, {}).get(leg, 0.0) + count
            )
        elif key[0] == "cache":
            _, cache, leg = key
            bucket = per_branch.setdefault(f"__cache__{cache}", {})
            bucket[leg] = bucket.get(leg, 0.0) + count

    # Zero-total records (keys present, all counts 0 — e.g. a snapshot
    # taken before traffic) are kept with support 0.0 rather than
    # skipped: merge() then weights them out while still retaining
    # their keys, so merging profiles equals profiling pooled counts.
    for table_name, action_counts in per_table.items():
        if table_name not in program.nodes:
            continue
        total = sum(action_counts.values())
        if total > 0:
            profile.action_probs[table_name] = {
                a: c / total for a, c in action_counts.items()
            }
        else:
            profile.action_probs[table_name] = {
                a: 0.0 for a in action_counts
            }
        profile.action_support[table_name] = total
    for cond_name, legs in per_branch.items():
        if cond_name.startswith("__cache__"):
            cache = cond_name[len("__cache__"):]
            total = legs.get("hit", 0.0) + legs.get("miss", 0.0)
            profile.cache_hit_rates[cache] = (
                legs.get("hit", 0.0) / total if total > 0 else 0.0
            )
            profile.cache_support[cache] = total
            continue
        total = legs.get("true", 0.0) + legs.get("false", 0.0)
        profile.branch_probs[cond_name] = (
            legs.get("true", 0.0) / total if total > 0 else 0.0
        )
        profile.branch_support[cond_name] = total
    return profile


def measure_table_m(
    node: TableNode, entries: list
) -> int:
    """Derive the probe count ``m`` from a table's installed entries."""
    if not entries:
        return DEFAULT_M[node.worst_match_type]
    worst = node.worst_match_type
    if worst is MatchType.EXACT:
        return 1
    if worst is MatchType.LPM:
        return distinct_prefix_lengths(entries)
    if worst is MatchType.TERNARY:
        return distinct_masks(entries)
    return min(8, max(1, len(entries)))


def collect_profile(
    original_program: Program,
    counter_snapshot: Mapping[CounterKey, int],
    counter_map: Optional[CounterMap] = None,
    control_plane: Optional[object] = None,
    cache_hit_rates: Optional[Mapping[str, float]] = None,
    update_window_s: float = 10.0,
    offered_pps: float = 1e6,
) -> RuntimeProfile:
    """Assemble a full profile from live deployment state.

    ``control_plane`` duck-types :class:`repro.nic.ControlPlane` (shadow
    entries, update rates); ``cache_hit_rates`` come from the emulator's
    flow-cache stats keyed by cache-node name.
    """
    counts = (
        counter_map.translate(counter_snapshot)
        if counter_map is not None
        else dict(counter_snapshot)
    )
    profile = profile_from_counts(
        original_program, counts, offered_pps=offered_pps
    )
    if control_plane is not None:
        snapshot = control_plane.snapshot()
        for table_name, entries in snapshot.items():
            if table_name not in original_program.nodes:
                continue
            node = original_program.table(table_name)
            profile.entry_counts[table_name] = len(entries)
            profile.table_m[table_name] = measure_table_m(node, entries)
        profile.update_rates = control_plane.update_rates(
            window_s=update_window_s
        )
    if cache_hit_rates:
        profile.cache_hit_rates.update(cache_hit_rates)
    return profile


def profile_to_json(profile: RuntimeProfile) -> dict:
    """Serializable snapshot of a profile (CLI persistence)."""
    return {
        "action_probs": {
            t: dict(p) for t, p in profile.action_probs.items()
        },
        "branch_probs": dict(profile.branch_probs),
        "entry_counts": dict(profile.entry_counts),
        "update_rates": dict(profile.update_rates),
        "table_m": dict(profile.table_m),
        "cache_hit_rates": dict(profile.cache_hit_rates),
        "offered_pps": profile.offered_pps,
        "action_support": dict(profile.action_support),
        "branch_support": dict(profile.branch_support),
        "cache_support": dict(profile.cache_support),
    }


def profile_from_json(data: Mapping) -> RuntimeProfile:
    """Inverse of :func:`profile_to_json`."""
    return RuntimeProfile(
        action_probs={
            str(t): {str(a): float(v) for a, v in probs.items()}
            for t, probs in data.get("action_probs", {}).items()
        },
        branch_probs={
            str(c): float(v)
            for c, v in data.get("branch_probs", {}).items()
        },
        entry_counts={
            str(t): int(v)
            for t, v in data.get("entry_counts", {}).items()
        },
        update_rates={
            str(t): float(v)
            for t, v in data.get("update_rates", {}).items()
        },
        table_m={
            str(t): int(v) for t, v in data.get("table_m", {}).items()
        },
        cache_hit_rates={
            str(c): float(v)
            for c, v in data.get("cache_hit_rates", {}).items()
        },
        offered_pps=float(data.get("offered_pps", 1e6)),
        action_support={
            str(t): float(v)
            for t, v in data.get("action_support", {}).items()
        },
        branch_support={
            str(c): float(v)
            for c, v in data.get("branch_support", {}).items()
        },
        cache_support={
            str(c): float(v)
            for c, v in data.get("cache_support", {}).items()
        },
    )


def profile_entropy(pipelet_probs: Iterable[float]) -> float:
    """Shannon entropy of the pipelet traffic distribution (§5.4.3).

    Probabilities are normalised first; zero-probability pipelets
    contribute nothing.
    """
    probs = [p for p in pipelet_probs if p > 0]
    total = sum(probs)
    if total <= 0:
        return 0.0
    normalised = [p / total for p in probs]
    return -sum(p * math.log2(p) for p in normalised)
