"""Hot pipelet detection (§4.1.2).

The cost of a pipelet is ``L(G') * P(G')`` — its expected latency as a
subgraph, weighted by the probability that a packet reaches it. Pipeleon
optimizes only the top-k such pipelets to keep runtime optimization
timely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.costmodel import CostModel
from repro.core.pipelets import Pipelet, pipelet_probability
from repro.core.profiling import RuntimeProfile, profile_entropy
from repro.ir.program import Program


@dataclass(frozen=True)
class PipeletCost:
    pipelet: Pipelet
    latency_ns: float  # L(G')
    probability: float  # P(G')

    @property
    def weighted_cost(self) -> float:
        return self.latency_ns * self.probability


def pipelet_latency(
    program: Program,
    pipelet: Pipelet,
    profile: RuntimeProfile,
    model: CostModel,
) -> float:
    """L(G') for a branch-free run: reach-weighted node costs.

    Traffic thins as it flows through dropping tables, so each table's
    cost is weighted by the survival probability of its predecessors.
    """
    survive = 1.0
    total = 0.0
    for name in pipelet.table_names:
        table = program.table(name)
        total += survive * model.node_cost(program, name, profile)
        survive *= 1.0 - profile.drop_rate(table)
    return total


def rank_pipelets(
    program: Program,
    pipelets: Sequence[Pipelet],
    profile: RuntimeProfile,
    model: CostModel,
) -> list[PipeletCost]:
    """All pipelets ranked by weighted cost, hottest first."""
    reach = model.reach_probs(program, profile)
    costs = [
        PipeletCost(
            pipelet=pipelet,
            latency_ns=pipelet_latency(program, pipelet, profile, model),
            probability=pipelet_probability(program, pipelet, reach),
        )
        for pipelet in pipelets
    ]
    costs.sort(key=lambda c: (-c.weighted_cost, c.pipelet.pipelet_id))
    return costs


def top_k(
    program: Program,
    pipelets: Sequence[Pipelet],
    profile: RuntimeProfile,
    model: CostModel,
    k: float = 0.2,
) -> list[PipeletCost]:
    """The top fraction ``k`` (0 < k <= 1) of pipelets by cost."""
    if not 0.0 < k <= 1.0:
        raise ValueError(f"k must be in (0, 1], got {k}")
    ranked = rank_pipelets(program, pipelets, profile, model)
    count = max(1, math.ceil(len(ranked) * k)) if ranked else 0
    return ranked[:count]


def traffic_entropy(
    program: Program,
    pipelets: Sequence[Pipelet],
    profile: RuntimeProfile,
    model: CostModel,
) -> float:
    """Entropy of the pipelet traffic distribution (Figure 18)."""
    reach = model.reach_probs(program, profile)
    return profile_entropy(
        pipelet_probability(program, p, reach) for p in pipelets
    )
