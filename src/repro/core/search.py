"""The best-optimization search (§4.2, Figure 16).

Two steps, as in the paper:

1. **Local search** — for each top-k pipelet, enumerate all valid
   combinations of the three techniques: dependency-respecting table
   orders x segmentations of the ordered run into cache / merge / plain
   segments (merge and cache never touch the same table by construction:
   segments are disjoint). Each combination is priced with the cost
   model: performance gain, memory cost, entry-update cost.
2. **Global search** — a grouped knapsack over (memory, update-rate)
   budgets picks at most one combination per pipelet maximising total
   gain (the dynamic program of Figure 16, with capacities discretised
   onto a grid).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Optional, Sequence

from repro.core.costmodel import CostModel
from repro.core.hotspots import pipelet_latency, top_k
from repro.core.pipelets import (
    Pipelet,
    PipeletGroup,
    find_groups,
    partition,
)
from repro.core.plan import (
    Candidate,
    OptimizationPlan,
    ResourceBudget,
    Segment,
)
from repro.core.profiling import RuntimeProfile
from repro.core.transform.reorder import drop_rate_order
from repro.errors import SearchError
from repro.ir.dependency import movable_to_front, valid_orders
from repro.ir.program import Program
from repro.ir.tables import MatchType, TableNode


@dataclass(frozen=True)
class SearchOptions:
    """Tuning knobs for the optimizer search."""

    k: float = 0.2  # top-k pipelet fraction (1.0 = exhaustive, ESearch)
    max_orders: int = 12  # reorderings considered per pipelet
    merge_max_tables: int = 2  # paper restricts merges to 2 tables
    cache_capacity: int = 4096
    cache_insertion_limit_pps: float = 10000.0
    default_hit_rate: float = 0.9
    #: Fraction of cache misses assumed to be *new* flows (insertion churn).
    flow_churn: float = 0.05
    #: Seconds of lost cache warmth per covered-table update: a cache
    #: whose covered tables are updated u times/s has its estimated hit
    #: rate divided by (1 + penalty * u) — the cache-invalidation
    #: problem of §3.2.2 made quantitative.
    invalidation_penalty_s: float = 0.5
    enable_reorder: bool = True
    enable_cache: bool = True
    enable_merge: bool = True
    enable_groups: bool = True
    max_candidates_per_pipelet: int = 128
    max_pipelet_len: int = 6
    memory_grid: int = 64
    update_grid: int = 32


# ---------------------------------------------------------------------------
# Segment enumeration
# ---------------------------------------------------------------------------


#: Run length beyond which full segmentation enumeration (O(3^n)) is
#: replaced with a curated candidate set.
FULL_ENUMERATION_LIMIT = 8


def _curated_segmentations(
    n: int, options: SearchOptions
) -> list[tuple[tuple[str, int], ...]]:
    """A small, high-value labelling set for long runs."""
    results: list[tuple[tuple[str, int], ...]] = [(("none", 1),) * n]
    if options.enable_cache:
        results.append((("cache", n),))  # one big cache
        half = n // 2
        results.append((("cache", half), ("cache", n - half)))
        # Cache only one half (the other half may churn or be cheap).
        results.append(
            (("cache", half),) + (("none", 1),) * (n - half)
        )
        results.append(
            (("none", 1),) * half + (("cache", n - half),)
        )
        for quarter in (n // 4,):
            if 0 < quarter < half:
                results.append(
                    (
                        ("cache", quarter),
                        ("cache", half - quarter),
                        ("cache", n - half),
                    )
                )
    if options.enable_merge and options.merge_max_tables >= 2:
        results.append((("merge", 2),) + (("none", 1),) * (n - 2))
        if n >= 4:
            results.append(
                (("merge", 2), ("merge", 2)) + (("none", 1),) * (n - 4)
            )
    return results


def enumerate_segmentations(
    n: int, options: SearchOptions
) -> list[tuple[tuple[str, int], ...]]:
    """All canonical labellings ((op, length), ...) covering n tables.

    Canonical means "none" segments have length 1 (so unlabelled runs
    have a unique representation). Merge segments respect
    ``merge_max_tables``. Beyond ``FULL_ENUMERATION_LIMIT`` tables the
    exponential enumeration is replaced with a curated set.
    """
    if n > FULL_ENUMERATION_LIMIT:
        return _curated_segmentations(n, options)
    results: list[tuple[tuple[str, int], ...]] = []

    def recurse(pos: int, acc: list[tuple[str, int]]) -> None:
        if pos == n:
            results.append(tuple(acc))
            return
        for length in range(1, n - pos + 1):
            ops = []
            # 'none' segments are canonically length 1, so a run of
            # unlabelled tables has exactly one representation.
            if length == 1:
                ops.append("none")
            if options.enable_cache:
                ops.append("cache")
            if (
                options.enable_merge
                and 2 <= length <= options.merge_max_tables
            ):
                ops.append("merge")
            for op in ops:
                acc.append((op, length))
                recurse(pos + length, acc)
                acc.pop()

    recurse(0, [])
    return results


def _segments_from_labels(
    order: Sequence[str], labels: tuple[tuple[str, int], ...]
) -> tuple[Segment, ...]:
    segments = []
    position = 0
    for op, length in labels:
        segments.append(
            Segment(op, tuple(order[position:position + length]))
        )
        position += length
    return tuple(segments)


# ---------------------------------------------------------------------------
# Candidate evaluation (virtual pipelet pricing — no program construction)
# ---------------------------------------------------------------------------


def _segment_merge_allowed(
    program: Program, tables: Sequence[str]
) -> bool:
    return all(
        all(
            key.match_type is MatchType.EXACT
            for key in program.table(name).keys
        )
        for name in tables
    )


def _entry_bytes(n_fields: int) -> float:
    from repro.ir.entries import ENTRY_OVERHEAD_BYTES, FIELD_BYTES

    return float(ENTRY_OVERHEAD_BYTES + FIELD_BYTES * max(1, n_fields))


@dataclass
class _Estimate:
    latency_ns: float = 0.0
    memory_bytes: float = 0.0
    update_pps: float = 0.0


def _evaluate_segments(
    program: Program,
    order: Sequence[str],
    segments: Sequence[Segment],
    profile: RuntimeProfile,
    model: CostModel,
    options: SearchOptions,
    reach_p: float,
) -> Optional[_Estimate]:
    """Price an optimized pipelet layout; None if invalid (bad merge)."""
    estimate = _Estimate()
    survive = 1.0  # survival probability within the pipelet
    for segment in segments:
        tables = [program.table(name) for name in segment.tables]
        params = model.params_for(tables[0].pipeline)
        seg_action_cost = sum(
            model.action_cost(t, profile) for t in tables
        )
        seg_survival = 1.0
        for table in tables:
            seg_survival *= 1.0 - profile.drop_rate(table)
        if segment.op == "none":
            inner = 1.0
            for table in tables:
                estimate.latency_ns += (
                    survive
                    * inner
                    * model.table_cost(table, profile)
                )
                inner *= 1.0 - profile.drop_rate(table)
            survive *= seg_survival
            continue
        # Miss-path cost: the covered tables execute in full.
        miss_cost = 0.0
        inner = 1.0
        for table in tables:
            miss_cost += inner * model.table_cost(table, profile)
            inner *= 1.0 - profile.drop_rate(table)
        n_fields = len(
            {f for t in tables for f in t.match_fields}
        )
        if segment.op == "cache":
            update_sum = sum(
                profile.update_rate(t.name) for t in tables
            )
            hit = options.default_hit_rate / (
                1.0 + options.invalidation_penalty_s * update_sum
            )
            estimate.latency_ns += survive * (
                params.lmat_ns
                + hit * seg_action_cost
                + (1.0 - hit) * (miss_cost + params.insert_ns)
            )
            estimate.memory_bytes += (
                options.cache_capacity * _entry_bytes(n_fields)
            )
            miss_pps = reach_p * survive * (1.0 - hit)
            estimate.update_pps += min(
                options.cache_insertion_limit_pps,
                miss_pps * profile.offered_pps * options.flow_churn,
            )
        elif segment.op == "merge":
            if not _segment_merge_allowed(program, segment.tables):
                return None
            hit = 1.0
            for table in tables:
                hit *= profile.hit_prob(table)
            estimate.latency_ns += survive * (
                params.lmat_ns
                + hit * seg_action_cost
                + (1.0 - hit) * miss_cost
            )
            entry_product = 1.0
            for table in tables:
                entry_product *= max(
                    1, profile.entry_count(table.name)
                )
            estimate.memory_bytes += entry_product * _entry_bytes(
                n_fields
            )
            # I(T_AB) = sum_i I(t_i) * prod_{j != i} N(t_j)  (§3.2.3)
            for i, table in enumerate(tables):
                others = 1.0
                for j, other in enumerate(tables):
                    if j != i:
                        others *= max(
                            1, profile.entry_count(other.name)
                        )
                estimate.update_pps += (
                    profile.update_rate(table.name) * others
                )
        survive *= seg_survival
    return estimate


def _candidate_orders(
    tables: Sequence[TableNode],
    profile: RuntimeProfile,
    options: SearchOptions,
) -> list[tuple[str, ...]]:
    """Orders worth evaluating for a run.

    Always contains the identity and the paper's drop-rate-greedy order
    (§3.2.1: promote tables with higher dropping rates), plus per-table
    hoists and — for short runs — a slice of the full valid-order
    enumeration.
    """
    identity = tuple(t.name for t in tables)
    orders: list[tuple[str, ...]] = [identity]

    def add(order: Optional[tuple[str, ...]]) -> None:
        if order is not None and order not in orders:
            orders.append(order)

    add(drop_rate_order(tables, profile))
    droppers = sorted(
        (t for t in tables if profile.drop_rate(t) > 0),
        key=lambda t: -profile.drop_rate(t),
    )
    for table in droppers[:3]:
        add(movable_to_front(tables, table.name))
    if len(tables) <= 7:
        for order in islice(
            valid_orders(list(tables), options.max_orders),
            options.max_orders,
        ):
            if len(orders) >= options.max_orders:
                break
            add(order)
    return orders[: options.max_orders]


def local_candidates(
    program: Program,
    pipelet: Pipelet,
    profile: RuntimeProfile,
    model: CostModel,
    options: SearchOptions,
    reach_p: float,
) -> tuple[list[Candidate], int]:
    """All priced optimization combinations for one pipelet.

    Returns (candidates sorted by gain, combos evaluated).
    """
    run = pipelet.table_names
    tables = [program.table(name) for name in run]
    baseline = pipelet_latency(program, pipelet, profile, model)
    candidates: list[Candidate] = []
    evaluated = 0
    if options.enable_reorder and len(run) > 1:
        orders = _candidate_orders(tables, profile, options)
    else:
        orders = [tuple(run)]
    labelings = enumerate_segmentations(len(run), options)
    for order in orders:
        for labels in labelings:
            segments = _segments_from_labels(order, labels)
            is_noop = order == tuple(run) and all(
                s.op == "none" for s in segments
            )
            if is_noop:
                continue
            estimate = _evaluate_segments(
                program, order, segments, profile, model, options,
                reach_p,
            )
            evaluated += 1
            if estimate is None:
                continue
            gain = (baseline - estimate.latency_ns) * reach_p
            if gain <= 0:
                continue
            candidates.append(
                Candidate(
                    pipelet_id=pipelet.pipelet_id,
                    run=tuple(run),
                    order=tuple(order),
                    segments=segments,
                    gain_ns=gain,
                    memory_bytes=estimate.memory_bytes,
                    update_pps=estimate.update_pps,
                )
            )
    candidates.sort(
        key=lambda c: (
            -c.gain_ns,
            c.order != tuple(run),  # prefer the current order on ties
            c.order,
        )
    )
    return candidates[: options.max_candidates_per_pipelet], evaluated


def group_candidates(
    program: Program,
    group: PipeletGroup,
    profile: RuntimeProfile,
    model: CostModel,
    options: SearchOptions,
    reach_p: float,
) -> list[Candidate]:
    """Cache-the-diamond candidates for a pipelet group (§4.1.1)."""
    if not options.enable_cache:
        return []
    branch = program.node(group.branch)
    p_true = profile.branch_prob(group.branch)
    weighted_members = list(
        zip(group.members, (p_true, 1.0 - p_true))
    )
    if group.join is not None:
        weighted_members.append((group.join, 1.0))
    base = model.branch_cost(branch)
    for member, weight in weighted_members:
        base += weight * pipelet_latency(
            program, member, profile, model
        )
    update_sum = sum(
        profile.update_rate(name) for name in group.table_names()
    )
    hit = options.default_hit_rate / (
        1.0 + options.invalidation_penalty_s * update_sum
    )
    action_cost = 0.0
    for member, weight in weighted_members:
        action_cost += weight * sum(
            model.action_cost(program.table(name), profile)
            for name in member.table_names
        )
    params = model.params_for(branch.pipeline)
    optimized = (
        params.lmat_ns
        + hit * action_cost
        + (1.0 - hit) * (base + params.insert_ns)
    )
    gain = (base - optimized) * reach_p
    if gain <= 0:
        return []
    all_tables = group.table_names()
    n_fields = len(
        {
            f
            for name in all_tables
            for f in program.table(name).match_fields
        }
        | branch.read_fields()
    )
    memory = options.cache_capacity * _entry_bytes(n_fields)
    update = min(
        options.cache_insertion_limit_pps,
        reach_p
        * (1.0 - hit)
        * profile.offered_pps
        * options.flow_churn,
    )
    return [
        Candidate(
            pipelet_id=group.group_id,
            run=all_tables,
            order=all_tables,
            segments=(Segment("cache", all_tables),),
            gain_ns=gain,
            memory_bytes=memory,
            update_pps=update,
            group=group,
        )
    ]


# ---------------------------------------------------------------------------
# Global search: grouped knapsack (Figure 16)
# ---------------------------------------------------------------------------


def global_search(
    candidates_by_pipelet: dict[str, list[Candidate]],
    budget: ResourceBudget,
    options: SearchOptions,
) -> list[Candidate]:
    """Pick at most one candidate per pipelet within the budgets."""
    groups = [c for c in candidates_by_pipelet.values() if c]
    if not groups:
        return []
    if not budget.bounded:
        return [
            max(group, key=lambda c: c.gain_ns) for group in groups
        ]

    memory_units = options.memory_grid
    update_units = options.update_grid
    memory_unit = (
        budget.memory_bytes / memory_units
        if math.isfinite(budget.memory_bytes)
        else None
    )
    update_unit = (
        budget.update_pps / update_units
        if math.isfinite(budget.update_pps)
        else None
    )

    def mem_cost(candidate: Candidate) -> int:
        if memory_unit is None:
            return 0
        if memory_unit == 0:
            # Zero budget: anything that consumes memory is infeasible.
            return 0 if candidate.memory_bytes <= 0 else memory_units + 1
        return math.ceil(candidate.memory_bytes / memory_unit)

    def upd_cost(candidate: Candidate) -> int:
        if update_unit is None:
            return 0
        if update_unit == 0:
            return 0 if candidate.update_pps <= 0 else update_units + 1
        return math.ceil(candidate.update_pps / update_unit)

    m_dim = memory_units + 1 if memory_unit is not None else 1
    e_dim = update_units + 1 if update_unit is not None else 1

    # gain[m][e], choice[m][e] per group layer (classic grouped knapsack:
    # each layer reads the previous layer's table).
    gains = [[0.0] * e_dim for _ in range(m_dim)]
    choices: list[list[list[Optional[Candidate]]]] = []

    for group in groups:
        previous = [row[:] for row in gains]
        layer: list[list[Optional[Candidate]]] = [
            [None] * e_dim for _ in range(m_dim)
        ]
        for m in range(m_dim):
            for e in range(e_dim):
                best_gain = previous[m][e]
                best_choice: Optional[Candidate] = None
                for candidate in group:
                    cm = mem_cost(candidate)
                    ce = upd_cost(candidate)
                    if cm > m or ce > e:
                        continue
                    gain = previous[m - cm][e - ce] + candidate.gain_ns
                    if gain > best_gain:
                        best_gain = gain
                        best_choice = candidate
                gains[m][e] = best_gain
                layer[m][e] = best_choice
        choices.append(layer)

    # Backtrack from the full budget cell.
    selected: list[Candidate] = []
    m, e = m_dim - 1, e_dim - 1
    for layer in reversed(choices):
        chosen = layer[m][e]
        if chosen is not None:
            selected.append(chosen)
            m -= mem_cost(chosen)
            e -= upd_cost(chosen)
    selected.reverse()
    return selected


# ---------------------------------------------------------------------------
# End-to-end optimization
# ---------------------------------------------------------------------------


def optimize(
    program: Program,
    profile: RuntimeProfile,
    model: CostModel,
    budget: Optional[ResourceBudget] = None,
    options: Optional[SearchOptions] = None,
    pipelets: Optional[Sequence[Pipelet]] = None,
) -> OptimizationPlan:
    """Full Pipeleon search: partition, top-k, local + global search."""
    budget = budget or ResourceBudget()
    options = options or SearchOptions()
    started = time.perf_counter()
    if pipelets is None:
        pipelets = partition(program, max_len=options.max_pipelet_len)
    hot = top_k(program, pipelets, profile, model, k=options.k)
    reach = model.reach_probs(program, profile)
    candidates_by_pipelet: dict[str, list[Candidate]] = {}
    combos = 0
    hot_pipelets = [cost.pipelet for cost in hot]
    # Per-pipelet local search first.
    for cost in hot:
        pipelet = cost.pipelet
        if pipelet.is_switch_case:
            continue  # single special table; nothing to transform
        cands, evaluated = local_candidates(
            program, pipelet, profile, model, options, cost.probability
        )
        combos += evaluated
        if cands:
            candidates_by_pipelet[pipelet.pipelet_id] = cands
    # Cross-pipelet groups: a group cache replaces its members'
    # individual optimizations, so adopt it only when it beats their
    # combined best gain (otherwise keep the per-pipelet candidates).
    if options.enable_groups:
        for group in find_groups(program, hot_pipelets):
            reach_p = reach.get(group.branch, 0.0)
            group_cands = group_candidates(
                program, group, profile, model, options, reach_p
            )
            combos += len(group_cands)
            if not group_cands:
                continue
            member_ids = [m.pipelet_id for m in group.members]
            if group.join is not None:
                member_ids.append(group.join.pipelet_id)
            member_best = sum(
                candidates_by_pipelet[mid][0].gain_ns
                for mid in member_ids
                if mid in candidates_by_pipelet
            )
            if group_cands[0].gain_ns > member_best:
                candidates_by_pipelet[group.group_id] = group_cands
                for mid in member_ids:
                    candidates_by_pipelet.pop(mid, None)
    selected = global_search(candidates_by_pipelet, budget, options)
    elapsed = time.perf_counter() - started
    return OptimizationPlan(
        candidates=selected,
        search_time_s=elapsed,
        pipelets_considered=len(hot),
        combos_evaluated=combos,
    )


def evaluate_candidate_gain(
    program: Program,
    candidate: Candidate,
    profile: RuntimeProfile,
    model: CostModel,
    options: SearchOptions,
    reach_probs: Optional[dict[str, float]] = None,
) -> float:
    """Re-price an existing candidate under a (newer) profile.

    Used by the controller to decide whether a freshly-searched plan is
    genuinely better than the deployed one or just noise.
    """
    if candidate.group is not None:
        reach = reach_probs or model.reach_probs(program, profile)
        fresh = group_candidates(
            program,
            candidate.group,
            profile,
            model,
            options,
            reach.get(candidate.group.branch, 0.0),
        )
        return fresh[0].gain_ns if fresh else 0.0
    run = candidate.run
    if any(name not in program.nodes for name in run):
        return 0.0
    pipelet = Pipelet(
        pipelet_id=candidate.pipelet_id,
        table_names=tuple(run),
        entry=run[0],
        exit_next=None,
    )
    baseline = pipelet_latency(program, pipelet, profile, model)
    estimate = _evaluate_segments(
        program,
        candidate.order,
        candidate.segments,
        profile,
        model,
        options,
        1.0,
    )
    if estimate is None:
        return 0.0
    reach = reach_probs or model.reach_probs(program, profile)
    reach_p = reach.get(run[0], 0.0)
    return (baseline - estimate.latency_ns) * reach_p


def evaluate_plan_gain(
    program: Program,
    plan: OptimizationPlan,
    profile: RuntimeProfile,
    model: CostModel,
    options: SearchOptions,
) -> float:
    """Total gain of an existing plan under the given profile."""
    reach = model.reach_probs(program, profile)
    return sum(
        evaluate_candidate_gain(
            program, candidate, profile, model, options, reach
        )
        for candidate in plan.candidates
    )


def exhaustive_search(
    program: Program,
    profile: RuntimeProfile,
    model: CostModel,
    budget: Optional[ResourceBudget] = None,
    options: Optional[SearchOptions] = None,
) -> OptimizationPlan:
    """ESearch baseline: the same machinery at k = 100%."""
    options = options or SearchOptions()
    return optimize(
        program,
        profile,
        model,
        budget,
        replace(options, k=1.0),
    )
