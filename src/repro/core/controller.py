"""The Pipeleon runtime: periodic profiling and re-optimization (§5.3).

The controller owns a :class:`Deployment`, collects a profile every
``profile_period_s`` emulated seconds, recomputes the optimization plan
from the *original* program, and redeploys when the plan structurally
changes — reordering on drop-rate shifts, dropping caches when insertion
bursts wreck their hit rates, reversing merges whose source tables grew
or churn too much, exactly the adaptation loop of Figure 11.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.costmodel import CostModel
from repro.core.deployment import Deployment
from repro.core.plan import OptimizationPlan, ResourceBudget
from repro.core.sharded import ShardedDeployment
from repro.core.profiling import RuntimeProfile
from repro.core.search import (
    SearchOptions,
    evaluate_plan_gain,
    optimize,
)
from repro.ir.program import Program
from repro.nic.control_plane import ControlPlane, SimClock
from repro.nic.packet import Packet
from repro.nic.targets import TargetModel
from repro.traffic.scenarios import Scenario


def plan_signature(plan: OptimizationPlan) -> tuple:
    """Structural identity of a plan (ignores estimated gains)."""
    return tuple(
        sorted(
            (
                c.pipelet_id,
                c.order,
                tuple((s.op, s.tables) for s in c.segments),
            )
            for c in plan.candidates
        )
    )


def plan_ops(plan: Optional[OptimizationPlan]) -> set:
    """The plan's active transforms as ``(pipelet, op, tables)`` keys.

    Diffing two plans' op sets is how the event log names what a
    redeploy actually did: a ``cache`` op present before but not after
    is a dropped cache, a vanished ``merge`` op is a reversed merge.
    """
    if plan is None:
        return set()
    return {
        (c.pipelet_id, s.op, s.tables)
        for c in plan.candidates
        for s in c.segments
        if s.op != "none"
    }


@dataclass(frozen=True)
class ControllerOptions:
    profile_period_s: float = 5.0
    offered_pps: float = 1e6
    update_window_s: float = 10.0
    #: Replace the estimated hit rate with the measured one when replanning.
    adapt_hit_rates: bool = True
    #: Redeploy only when the new plan beats the deployed one by this
    #: relative margin (hysteresis against profile noise; redeploying
    #: cold-starts every cache).
    replan_margin: float = 0.1


@dataclass
class TimePoint:
    """One emulated second of a scenario run."""

    time_s: float
    throughput_gbps: float
    mean_latency_ns: float
    phase: str
    reoptimized: bool = False
    plan: str = ""


class PipeleonController:
    """Closed-loop runtime optimizer around one deployment."""

    def __init__(
        self,
        program: Program,
        target: TargetModel,
        budget: Optional[ResourceBudget] = None,
        search: Optional[SearchOptions] = None,
        options: Optional[ControllerOptions] = None,
        model: Optional[CostModel] = None,
        clock: Optional[SimClock] = None,
        enabled: bool = True,
        sample_stride: int = 1,
        native_cache: Optional[bool] = None,
        baseline_plan: Optional[OptimizationPlan] = None,
        jobs: int = 1,
        telemetry=None,
        supervisor=None,
        fault_plan=None,
        transport: str = "shm",
        engine: str = "auto",
        live_plane=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.telemetry = telemetry
        #: Worker supervision policy + scripted faults, forwarded to
        #: every ShardedDeployment this controller builds (jobs > 1).
        #: Faults arm only the first fleet: a redeploy forks fresh
        #: workers, and a spec models one failure event.
        self.supervisor = supervisor
        self._fault_plan = fault_plan
        #: Data-plane transport for sharded deployments ("shm"|"pipe").
        self.transport = transport
        #: Execution tier every deployment this controller builds
        #: replays through ("auto"|"columnar"|"fastpath"|"interp").
        self.engine = engine
        self.original = program
        self.target = target
        self.budget = budget or ResourceBudget()
        self.search = search or SearchOptions()
        self.options = options or ControllerOptions()
        self.model = model or CostModel.for_target(target)
        self.enabled = enabled
        self.clock = clock or SimClock()
        self.control_plane = ControlPlane(program, self.clock)
        self._sample_stride = sample_stride
        self._native_cache = native_cache
        #: Number of shard workers; 1 keeps the in-process data plane.
        self.jobs = jobs
        #: Shared daemon-lifetime telemetry plane (``repro serve``):
        #: every fleet this controller builds adopts into it, and the
        #: outgoing fleet is released before teardown on redeploy.
        self.live_plane = live_plane
        self.deployment = self._make_deployment(baseline_plan)
        self.current_plan: Optional[OptimizationPlan] = baseline_plan
        self.last_profile: Optional[RuntimeProfile] = None
        self.reoptimizations = 0
        #: Attached SLO watchdog (see :meth:`attach_slo_watchdog`).
        self.slo_watchdog = None
        self.slo_breaches_seen = 0
        self.slo_breaches_suppressed = 0
        self._slo_lock = threading.Lock()
        self._slo_pending = False
        #: Breach scopes (``rule`` or ``rule:shard``, the watchdog's
        #: episode keys) whose pending episode already scheduled a
        #: replan. A second breach of the same scope before its clear —
        #: e.g. the breach re-latching while the scheduled replan is
        #: still queued behind an in-flight replay batch — is
        #: suppressed: one consume per episode.
        self._slo_consumed_scopes: set[str] = set()
        self._closed = False

    # -- SLO subscription ---------------------------------------------------

    def attach_slo_watchdog(self, watchdog) -> None:
        """Subscribe to a live SLO watchdog's breach/clear events.

        Each ``slo_breach`` schedules an *immediate* re-optimization:
        the next :meth:`run_scenario` tick profiles and replans without
        waiting out ``profile_period_s`` — the paper's SLA-triggered
        adaptation, as opposed to the periodic loop. Events land from
        the aggregator thread, so scheduling state is lock-protected,
        and triggering is idempotent *per episode*: a breach scope that
        has already scheduled a replan schedules nothing more until its
        ``slo_clear`` arrives, no matter how many times the breach
        re-fires while the replan is queued behind an in-flight replay
        batch (the double-breach-under-kill case).
        """
        self.slo_watchdog = watchdog
        watchdog.subscribe(self._on_slo_event)

    @staticmethod
    def _slo_scope(event: dict) -> str:
        """The watchdog's episode key: ``rule`` or ``rule:shard``."""
        rule = event.get("rule", "")
        shard = event.get("shard")
        return rule if shard is None else f"{rule}:{shard}"

    def _on_slo_event(self, event: dict) -> None:
        kind = event.get("kind")
        scope = self._slo_scope(event)
        if kind == "slo_clear":
            # Episode over: the scope may consume a replan again.
            with self._slo_lock:
                self._slo_consumed_scopes.discard(scope)
            return
        if kind != "slo_breach":
            return
        with self._slo_lock:
            self.slo_breaches_seen += 1
            if scope in self._slo_consumed_scopes:
                self.slo_breaches_suppressed += 1
                suppressed = True
            else:
                self._slo_consumed_scopes.add(scope)
                self._slo_pending = True
                suppressed = False
        self._emit(
            "slo_reoptimize_suppressed"
            if suppressed
            else "slo_reoptimize_scheduled",
            rule=event.get("rule"),
            shard=event.get("shard"),
            value=event.get("value"),
        )

    def consume_slo_trigger(self) -> bool:
        """True once per pending breach-triggered replan request."""
        with self._slo_lock:
            pending = self._slo_pending
            self._slo_pending = False
        return pending

    # -- re-optimization --------------------------------------------------------

    def collect_profile(self) -> RuntimeProfile:
        return self.deployment.profile(
            update_window_s=self.options.update_window_s,
            offered_pps=self.options.offered_pps,
        )

    def cell_snapshot(self) -> dict:
        """Deterministic runtime facts for one DSE run-database record.

        Everything here is a pure function of (config, seed) — no wall
        clocks — so resumed sweeps reproduce it bit-identically.
        """
        plan = self.current_plan
        return {
            "jobs": self.jobs,
            "engine": self.engine,
            "transport": self.transport if self.jobs > 1 else None,
            "enabled": self.enabled,
            "reoptimizations": self.reoptimizations,
            "plan": plan.describe() if plan is not None else None,
            "plan_gain_ns": (
                float(plan.total_gain_ns) if plan is not None else 0.0
            ),
            "plan_memory_bytes": (
                float(plan.total_memory_bytes) if plan is not None else 0.0
            ),
            "plan_update_pps": (
                float(plan.total_update_pps) if plan is not None else 0.0
            ),
        }

    def _emit(self, kind: str, **fields) -> None:
        """Record a controller decision (no-op without telemetry)."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.events.emit(kind, **fields)
        telemetry.registry.inc(
            "pipeleon_controller_decisions_total",
            help="Controller decisions by kind",
            kind=kind,
        )

    def maybe_reoptimize(self) -> bool:
        """Profile, re-search, redeploy if the best plan changed."""
        if not self.enabled:
            return False
        profile = self.collect_profile()
        self.last_profile = profile
        self._emit(
            "profile_collected",
            offered_pps=profile.offered_pps,
            caches_observed=len(profile.cache_hit_rates),
            tables_profiled=len(profile.entry_counts),
        )
        search = self.search
        if self.options.adapt_hit_rates and profile.cache_hit_rates:
            # A cache that is being invalidated constantly reports a low
            # hit rate; feed the *worst observed* rate back into the
            # search's expectation so the search can drop the cache.
            worst = min(profile.cache_hit_rates.values())
            if worst < search.default_hit_rate:
                from dataclasses import replace

                # Floor the adapted estimate: a single thrashing cache
                # should not veto caching everywhere (the update-rate
                # invalidation penalty already handles churn).
                search = replace(
                    search, default_hit_rate=max(0.3, worst)
                )
        plan = optimize(
            self.original,
            profile,
            self.model,
            budget=self.budget,
            options=search,
        )
        changed = self.current_plan is None or plan_signature(
            plan
        ) != plan_signature(self.current_plan)
        if changed and self.current_plan is not None:
            # Hysteresis: keep the deployed plan unless the new one is
            # clearly better under the fresh profile.
            current_gain = evaluate_plan_gain(
                self.original,
                self.current_plan,
                profile,
                self.model,
                search,
            )
            # Floor at zero gain: a deployed plan re-evaluating
            # *negative* under the fresh profile must not lower the
            # bar (multiplying a negative gain by (1 + margin) would
            # invert the margin and make regressions sticky) — any
            # positive-gain candidate should displace it.
            threshold = max(current_gain, 0.0) * (
                1.0 + self.options.replan_margin
            ) + 1e-9
            if plan.total_gain_ns <= threshold:
                changed = False
                self._emit(
                    "replan_rejected",
                    margin=self.options.replan_margin,
                    current_gain_ns=current_gain,
                    candidate_gain_ns=plan.total_gain_ns,
                    threshold_ns=threshold,
                    plan=plan.describe(),
                )
        if changed:
            old_ops = plan_ops(self.current_plan)
            new_ops = plan_ops(plan)
            for pipelet_id, op, tables in sorted(old_ops - new_ops):
                if op == "cache":
                    self._emit(
                        "cache_dropped",
                        pipelet=pipelet_id,
                        tables=list(tables),
                    )
                elif op == "merge":
                    self._emit(
                        "merge_reversed",
                        pipelet=pipelet_id,
                        tables=list(tables),
                    )
            self._emit(
                "replan_accepted",
                margin=self.options.replan_margin,
                gain_ns=plan.total_gain_ns,
                plan=plan.describe(),
                signature=repr(plan_signature(plan)),
            )
            self._redeploy(plan)
        else:
            self.deployment.reset_telemetry()
        return changed

    def _make_deployment(
        self,
        plan: Optional[OptimizationPlan],
        previous: Optional[Deployment] = None,
    ):
        """Build the data plane: in-process, or sharded when jobs > 1.

        A sharded redeploy tears down every worker and forks a fresh
        fleet from the newly materialised template, so a plan change
        reaches all shards atomically (shard-wide redeploy); warm-cache
        carry only applies to the in-process flavour.
        """
        kwargs = dict(
            plan=plan,
            control_plane=self.control_plane,
            sample_stride=self._sample_stride,
            cache_capacity=self.search.cache_capacity,
            cache_insertion_limit_pps=(
                self.search.cache_insertion_limit_pps
            ),
            default_hit_rate=self.search.default_hit_rate,
            native_cache=self._native_cache,
            telemetry=self.telemetry,
            engine=self.engine,
        )
        if self.jobs > 1:
            fault_plan = self._fault_plan
            self._fault_plan = None  # one-shot: see __init__
            return ShardedDeployment(
                self.original,
                self.target,
                n_workers=self.jobs,
                supervisor=self.supervisor,
                fault_plan=fault_plan,
                transport=self.transport,
                live_plane=self.live_plane,
                **kwargs,
            )
        return Deployment(
            self.original, self.target, previous=previous, **kwargs
        )

    def _redeploy(self, plan: OptimizationPlan) -> None:
        previous = self.deployment
        previous.close()
        self.deployment = self._make_deployment(
            plan,
            previous=previous if self.jobs == 1 else None,
        )
        self.current_plan = plan
        self.reoptimizations += 1
        self._emit(
            "redeploy",
            reoptimizations=self.reoptimizations,
            jobs=self.jobs,
            plan=plan.describe(),
        )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Tear down the current data plane (fleet, live adoption).

        Idempotent. The shared ``live_plane`` (if any) is released by
        the deployment's own close and survives for the daemon to
        stop; a per-deployment live plane is stopped outright.
        """
        if self._closed:
            return
        self._closed = True
        self.deployment.close()

    def __enter__(self) -> "PipeleonController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- traffic ------------------------------------------------------------------

    def run(self, packets: Iterable[Packet]):
        return self.deployment.run(packets)

    def start_scenario(self) -> None:
        """Arm the periodic-profiling schedule for a scenario run.

        :meth:`scenario_tick` can then be called tick-by-tick by an
        external driver (the serve-mode job loop, which checks for
        cancellation between ticks); :meth:`run_scenario` is the
        one-shot wrapper over the same pair.
        """
        self._next_profile_at = self.options.profile_period_s

    def scenario_tick(
        self,
        time_s: float,
        phase,
        packets_per_tick: int = 300,
    ):
        """Run one emulated second: control action, replay, replan.

        Returns ``(TimePoint, RunStats)`` — the timeline entry plus the
        tick's raw merged stats, so callers can fold per-tick RunStats
        with :meth:`~repro.nic.stats.RunStats.merge` into a bit-stable
        session total. Watchdog-triggered replans are consumed here, at
        the tick boundary, *between* replay batches — never inside one
        — which is what serializes chaos-scheduled replans against
        in-flight traffic.
        """
        if phase.control_action is not None:
            phase.control_action(self.deployment, time_s)
        packets = list(phase.stream_factory(packets_per_tick))
        stats = self.deployment.run(packets)
        reoptimized = False
        self.clock.advance(1.0)
        slo_triggered = self.consume_slo_trigger()
        if self.enabled and (
            slo_triggered or self.clock.now_s >= self._next_profile_at
        ):
            reoptimized = self.maybe_reoptimize()
            self._next_profile_at = (
                self.clock.now_s + self.options.profile_period_s
            )
        point = TimePoint(
            time_s=time_s,
            throughput_gbps=stats.throughput_gbps(self.target),
            mean_latency_ns=stats.mean_latency_ns,
            phase=phase.name,
            reoptimized=reoptimized,
            plan=(
                self.current_plan.describe()
                if self.current_plan
                else "none"
            ),
        )
        return point, stats

    def run_scenario(
        self,
        scenario: Scenario,
        packets_per_tick: int = 300,
    ) -> list[TimePoint]:
        """Drive a timed scenario, one emulated second per tick."""
        timeline: list[TimePoint] = []
        self.start_scenario()
        for time_s, phase in scenario.ticks():
            point, _ = self.scenario_tick(
                time_s, phase, packets_per_tick
            )
            timeline.append(point)
        return timeline
