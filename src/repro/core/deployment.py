"""Deployment: an optimized program bound to live state.

Bundles the original program, an optimization plan, the authoritative
control plane (which always speaks original table names — §2.3: "Pipeleon
ensures the same program management APIs by mapping the API calls to the
original program to the optimized version") and the NIC emulator running
the optimized program.

Entry propagation rules:

* direct tables — entries mirror one-to-one (also into table *copies*);
* merged tables — re-materialised from the covered tables' cross product
  on every covered update (the update amplification the paper's
  ``I(T_AB)`` formula estimates is tracked in ``materialized_updates``);
* flow caches — fully invalidated whenever a covered table changes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.plan import OptimizationPlan, apply_plan
from repro.core.profiling import (
    CounterMap,
    RuntimeProfile,
    collect_profile,
)
from repro.core.transform.merge import (
    merged_cache_entries,
    naive_merged_entries,
)
from repro.errors import TransformError
from repro.ir.entries import TableEntry
from repro.ir.program import Program
from repro.ir.tables import TableKind, TableNode
from repro.nic.control_plane import ControlPlane, SimClock, UpdateEvent
from repro.nic.emulator import NicEmulator
from repro.nic.packet import Packet
from repro.nic.stats import RunStats
from repro.nic.targets import TargetModel


class Deployment:
    """A running (possibly optimized) program on an emulated SmartNIC."""

    def __init__(
        self,
        original: Program,
        target: TargetModel,
        plan: Optional[OptimizationPlan] = None,
        control_plane: Optional[ControlPlane] = None,
        clock: Optional[SimClock] = None,
        sample_stride: int = 1,
        instrument: bool = True,
        cache_capacity: int = 4096,
        cache_insertion_limit_pps: float = 10000.0,
        default_hit_rate: float = 0.9,
        native_cache: Optional[bool] = None,
        previous: Optional["Deployment"] = None,
        telemetry=None,
        engine: str = "auto",
    ):
        self.original = original
        self.target = target
        self.plan = plan
        #: Default execution tier for :meth:`replay` ("auto",
        #: "columnar", "fastpath" or "interp"); all tiers are
        #: bit-identical on stats, counters and cache state.
        self.engine = engine
        self.telemetry = telemetry
        if telemetry is None and previous is not None:
            self.telemetry = telemetry = previous.telemetry
        if control_plane is not None:
            self.clock = control_plane.clock
            self.control_plane = control_plane
        else:
            self.clock = clock or SimClock()
            self.control_plane = ControlPlane(original, self.clock)

        if plan is not None and not plan.is_noop:
            result = apply_plan(
                original,
                plan,
                cache_capacity=cache_capacity,
                cache_insertion_limit_pps=cache_insertion_limit_pps,
                default_hit_rate=default_hit_rate,
            )
            self.program = result.program
            self.counter_map = result.counter_map
        else:
            self.program = original.clone()
            self.counter_map = CounterMap()

        self.emulator = NicEmulator(
            self.program,
            target,
            clock=self.clock,
            sample_stride=sample_stride,
            instrument=instrument,
            native_cache=native_cache,
        )
        if telemetry is not None:
            telemetry.bind_clock(self.clock)
            telemetry.observe_control_plane(self.control_plane)
            self.emulator.tracer = telemetry.tracer
        #: Entry operations actually applied to the data plane, per
        #: original-table update (measures merge update amplification).
        self.materialized_updates: dict[str, int] = {}
        self._merged_nodes = self._find_merged_nodes()
        self._copies = self._find_copies()
        self.materialize_all()
        self.carried_caches: list[str] = []
        if previous is not None:
            self._carry_cache_state(previous)
        self.control_plane.add_listener(self._on_update)
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Detach from the control plane (before re-deploying)."""
        if not self._closed:
            self.control_plane.remove_listener(self._on_update)
            self._closed = True

    def _carry_cache_state(self, previous: "Deployment") -> None:
        """Incremental redeployment (§6): keep warm cache state.

        A flow cache in the new layout whose covered tables, key fields
        and capacity are unchanged from the previous deployment adopts
        the previous cache's contents instead of cold-starting. The
        paper lists incremental compile-and-deploy as future work; this
        is the runtime-state half of it.
        """
        old_nodes = {
            name: previous.program.table(name)
            for name in previous.emulator.flow_caches
            if name in previous.program.nodes
        }
        for name, cache in self.emulator.flow_caches.items():
            old_cache = previous.emulator.flow_caches.get(name)
            old_node = old_nodes.get(name)
            if old_cache is None or old_node is None:
                continue
            new_node = self.program.table(name)
            same_shape = (
                old_node.cache_info is not None
                and new_node.cache_info is not None
                and old_node.cache_info.covers
                == new_node.cache_info.covers
                and old_node.match_fields == new_node.match_fields
                and old_cache.capacity == cache.capacity
            )
            if same_shape:
                self.emulator.flow_caches[name] = old_cache
                self.carried_caches.append(name)

    # -- structure discovery -----------------------------------------------------

    def _find_merged_nodes(self) -> list[TableNode]:
        merged = []
        for table in self.program.tables():
            if table.kind is TableKind.MERGED:
                merged.append(table)
            elif table.annotations.get("naive_merge_of"):
                covers = [
                    str(c) for c in table.annotations["naive_merge_of"]
                ]
                # Only manageable when the covered tables still exist in
                # the original program (they're gone from the optimized
                # one); otherwise the caller owns the merged entries.
                if all(c in self.original.nodes for c in covers):
                    merged.append(table)
        return merged

    def _find_copies(self) -> dict[str, list[str]]:
        copies: dict[str, list[str]] = {}
        for table in self.program.tables():
            source = table.annotations.get("copy_of")
            if source:
                copies.setdefault(str(source), []).append(table.name)
        return copies

    @staticmethod
    def _merge_covers(node: TableNode) -> tuple[str, ...]:
        """Original tables a merged/naive-merged node derives from."""
        if node.cache_info is not None:
            return tuple(node.cache_info.covers)
        return tuple(
            str(c) for c in node.annotations.get("naive_merge_of", ())
        )

    def affected_runtime_tables(self, table: str) -> list[str]:
        """Runtime tables whose entries derive from original ``table``:
        the direct mirror (when the optimized program kept the table),
        its copies, and every merged node covering it — exactly the
        set an update to ``table`` re-materialises. Replicated data
        planes (the sharded engine) broadcast these tables'
        post-materialisation entry lists after each update.
        """
        names = []
        if table in self.emulator.runtime_tables:
            names.append(table)
        names.extend(self._copies.get(table, []))
        for node in self._merged_nodes:
            if table in self._merge_covers(node):
                names.append(node.name)
        return names

    # -- entry materialisation ------------------------------------------------------

    def materialize_all(self) -> None:
        snapshot = self.control_plane.snapshot()
        managed_merges = {node.name for node in self._merged_nodes}
        for name, runtime in self.emulator.runtime_tables.items():
            node = self.program.table(name)
            if name in managed_merges:
                if node.kind is TableKind.MERGED:
                    self._materialize_merged(node, snapshot)
                else:
                    self._materialize_naive(node, snapshot)
            elif node.annotations.get("naive_merge_of"):
                continue  # caller-managed naive merge (originals gone)
            elif node.annotations.get("copy_of"):
                source = str(node.annotations["copy_of"])
                self.emulator.set_table_entries(
                    name,
                    (e.clone() for e in snapshot.get(source, [])),
                )
            elif node.kind is TableKind.PLAIN and name in snapshot:
                self.emulator.set_table_entries(
                    name, (e.clone() for e in snapshot[name])
                )

    def _materialize_merged(
        self, node: TableNode, snapshot: dict[str, list[TableEntry]]
    ) -> None:
        info = node.cache_info
        if info is None:
            raise TransformError(
                f"Merged table {node.name!r} lacks cache_info"
            )
        covered_tables = [
            self.original.table(name) for name in info.covers
        ]
        covered_entries = [
            snapshot.get(name, []) for name in info.covers
        ]
        entries = merged_cache_entries(
            node, covered_tables, covered_entries
        )
        self.emulator.set_table_entries(node.name, entries)
        self.materialized_updates[node.name] = (
            self.materialized_updates.get(node.name, 0) + len(entries)
        )

    def _materialize_naive(
        self, node: TableNode, snapshot: dict[str, list[TableEntry]]
    ) -> None:
        covers = [str(c) for c in node.annotations["naive_merge_of"]]
        covered_tables = [self.original.table(name) for name in covers]
        covered_entries = [snapshot.get(name, []) for name in covers]
        entries = naive_merged_entries(
            node, covered_tables, covered_entries
        )
        self.emulator.set_table_entries(node.name, entries)
        self.materialized_updates[node.name] = (
            self.materialized_updates.get(node.name, 0) + len(entries)
        )

    # -- runtime update propagation ----------------------------------------------------

    def _on_update(self, event: UpdateEvent) -> None:
        if event.op == "flush":
            self.emulator.flush_caches()
            return
        table = event.table
        snapshot = None
        # Direct mirror (the original table may have been subsumed by a
        # naive merge, in which case it has no runtime twin).
        runtime = self.emulator.runtime_tables.get(table)
        if runtime is not None:
            self._mirror(table, event)
        for copy in self._copies.get(table, []):
            self._mirror(copy, event)
        # Merged tables covering it: re-materialise (amplification).
        for node in self._merged_nodes:
            if table in self._merge_covers(node):
                if snapshot is None:
                    snapshot = self.control_plane.snapshot()
                if node.kind is TableKind.MERGED:
                    self._materialize_merged(node, snapshot)
                else:
                    self._materialize_naive(node, snapshot)
        # Flow caches covering it: invalidate wholesale.
        self.emulator.invalidate_caches_covering(table)

    def _mirror(self, runtime_table: str, event: UpdateEvent) -> None:
        """Apply one original-table op to a runtime table by rebuild.

        Rebuilding from the shadow store keeps the mapping trivially
        correct for insert/delete/modify alike; tables in these
        experiments are small enough that this is not a bottleneck.
        """
        node = self.program.table(runtime_table)
        source = str(node.annotations.get("copy_of", event.table))
        entries = self.control_plane.entries(source)
        self.emulator.set_table_entries(
            runtime_table, (e.clone() for e in entries)
        )
        self.materialized_updates[runtime_table] = (
            self.materialized_updates.get(runtime_table, 0) + 1
        )

    # -- control-plane passthrough API ----------------------------------------------------

    def insert_entry(self, table: str, entry: TableEntry) -> int:
        return self.control_plane.insert_entry(table, entry)

    def insert_entries(
        self, table: str, entries: Iterable[TableEntry]
    ) -> list[int]:
        return self.control_plane.insert_entries(table, entries)

    def delete_entry(self, table: str, entry_id: int) -> TableEntry:
        return self.control_plane.delete_entry(table, entry_id)

    def modify_entry(
        self, table: str, entry_id: int, new_entry: TableEntry
    ) -> None:
        self.control_plane.modify_entry(table, entry_id, new_entry)

    # -- telemetry -------------------------------------------------------------------------

    @property
    def tracer(self):
        """The packet tracer watching this deployment (None if off)."""
        return self.emulator.tracer

    def cache_hit_rates(self) -> dict[str, float]:
        rates: dict[str, float] = {}
        for name, cache in self.emulator.flow_caches.items():
            if cache.stats.lookups:
                rates[name] = cache.stats.hit_rate
        snapshot = self.emulator.counters.snapshot()
        merged_counts: dict[str, dict[str, float]] = {}
        for key, count in snapshot.items():
            if key[0] == "cache":
                merged_counts.setdefault(key[1], {})[key[2]] = count
        for name, legs in merged_counts.items():
            total = legs.get("hit", 0.0) + legs.get("miss", 0.0)
            if total:
                rates.setdefault(name, legs.get("hit", 0.0) / total)
        return rates

    def profile(
        self,
        update_window_s: float = 10.0,
        offered_pps: float = 1e6,
    ) -> RuntimeProfile:
        """Collect a runtime profile in original-program coordinates."""
        return collect_profile(
            self.original,
            self.emulator.counters.snapshot(),
            counter_map=self.counter_map,
            control_plane=self.control_plane,
            cache_hit_rates=self.cache_hit_rates(),
            update_window_s=update_window_s,
            offered_pps=offered_pps,
        )

    def reset_telemetry(self) -> None:
        self.emulator.counters.reset()
        for cache in self.emulator.flow_caches.values():
            cache.stats.reset_rates()
        if self.emulator.native_cache is not None:
            self.emulator.native_cache.stats.reset_rates()
        if self.emulator.tracer is not None:
            self.emulator.tracer.reset()

    # -- traffic ----------------------------------------------------------------------------

    def run(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
    ) -> RunStats:
        return self.emulator.run(packets, offered_pps=offered_pps)

    def replay(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
        batch: int = 256,
        packet_pool=None,
        engine: Optional[str] = None,
    ) -> RunStats:
        """Batch replay through a compiled execution tier.

        ``engine`` overrides the deployment default (``"auto"`` runs
        the columnar batch kernels with closure-tier demotion).
        """
        return self.emulator.replay(
            packets,
            offered_pps=offered_pps,
            batch=batch,
            packet_pool=packet_pool,
            engine=engine if engine is not None else self.engine,
        )

    def throughput_gbps(self, stats: RunStats) -> float:
        return stats.throughput_gbps(self.target)
