"""Optimization plans: what the search decides, what deployment applies.

A plan is a set of per-pipelet *candidates*. Each candidate fixes a table
order (reordering) and labels contiguous segments of that order with an
operation: ``none`` (leave alone), ``cache`` (flow cache over the
segment), or ``merge`` (merged exact cache). Group candidates cache a
whole branch diamond. Candidates carry the cost-model estimates the
knapsack search needs: gain (ns, reach-weighted), memory bytes, and
added entry-update rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.pipelets import PipeletGroup
from repro.core.profiling import CounterMap
from repro.core.transform import (
    TransformResult,
    apply_cache,
    apply_group_cache,
    apply_merge,
    apply_reorder,
)
from repro.errors import SearchError
from repro.ir.program import Program


@dataclass(frozen=True)
class Segment:
    """One contiguous slice of a pipelet's (re)ordered tables."""

    op: str  # "none" | "cache" | "merge"
    tables: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in ("none", "cache", "merge"):
            raise SearchError(f"Unknown segment op {self.op!r}")
        if not self.tables:
            raise SearchError("Segment cannot be empty")


@dataclass(frozen=True)
class Candidate:
    """A complete optimization choice for one pipelet (or group)."""

    pipelet_id: str
    run: tuple[str, ...]  # tables in their original order
    order: tuple[str, ...]  # chosen order (== run if no reorder)
    segments: tuple[Segment, ...]
    gain_ns: float
    memory_bytes: float
    update_pps: float
    group: Optional[PipeletGroup] = None

    @property
    def is_noop(self) -> bool:
        return self.order == self.run and all(
            s.op == "none" for s in self.segments
        )

    def describe(self) -> str:
        ops = []
        if self.order != self.run:
            ops.append(f"reorder->{list(self.order)}")
        for segment in self.segments:
            if segment.op != "none":
                ops.append(f"{segment.op}{list(segment.tables)}")
        if self.group is not None:
            ops.append(f"group-cache({self.group.group_id})")
        return "; ".join(ops) if ops else "no-op"


@dataclass(frozen=True)
class ResourceBudget:
    """Equation 5's constraints: memory and entry-update bandwidth."""

    memory_bytes: float = math.inf
    update_pps: float = math.inf

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.memory_bytes) or math.isfinite(
            self.update_pps
        )


@dataclass
class OptimizationPlan:
    """The chosen candidate per pipelet plus bookkeeping totals."""

    candidates: list[Candidate] = field(default_factory=list)
    search_time_s: float = 0.0
    pipelets_considered: int = 0
    combos_evaluated: int = 0

    @property
    def total_gain_ns(self) -> float:
        return sum(c.gain_ns for c in self.candidates)

    @property
    def total_memory_bytes(self) -> float:
        return sum(c.memory_bytes for c in self.candidates)

    @property
    def total_update_pps(self) -> float:
        return sum(c.update_pps for c in self.candidates)

    @property
    def is_noop(self) -> bool:
        return all(c.is_noop for c in self.candidates)

    def describe(self) -> str:
        lines = [
            f"plan: gain={self.total_gain_ns:.1f}ns "
            f"mem={self.total_memory_bytes:.0f}B "
            f"upd={self.total_update_pps:.1f}/s"
        ]
        for candidate in self.candidates:
            lines.append(
                f"  {candidate.pipelet_id}: {candidate.describe()}"
            )
        return "\n".join(lines)


def apply_plan(
    program: Program,
    plan: OptimizationPlan,
    cache_capacity: int = 4096,
    cache_insertion_limit_pps: float = 10000.0,
    default_hit_rate: float = 0.9,
) -> TransformResult:
    """Realise a plan as a transformed program (clone; original intact)."""
    result = TransformResult(program.clone(), CounterMap())
    for candidate in plan.candidates:
        if candidate.group is not None:
            has_op = any(s.op != "none" for s in candidate.segments)
            if has_op:
                result.absorb(
                    apply_group_cache(
                        result.program,
                        candidate.group,
                        capacity=cache_capacity,
                        insertion_limit_pps=cache_insertion_limit_pps,
                        estimated_hit_rate=default_hit_rate,
                    )
                )
            continue
        if candidate.order != candidate.run:
            result.absorb(
                apply_reorder(
                    result.program, candidate.run, candidate.order
                )
            )
        for segment in candidate.segments:
            if segment.op == "cache":
                result.absorb(
                    apply_cache(
                        result.program,
                        segment.tables,
                        capacity=cache_capacity,
                        insertion_limit_pps=cache_insertion_limit_pps,
                        estimated_hit_rate=default_hit_rate,
                    )
                )
            elif segment.op == "merge":
                result.absorb(
                    apply_merge(result.program, segment.tables)
                )
    return result
