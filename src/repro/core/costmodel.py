"""The approximate P4 performance model (§3.1).

Implements Equations 1-4 of the paper:

    L(G)      = sum over paths pi of P(pi) * L(pi)
    L(pi)     = sum of node costs along the path
    L(table)  = Lmatch + Laction
    Lmatch    = m * Lmat              (Equation 4a)
    Laction   = sum_a P(a) * n_a * Lact   (Equation 4b)

Rather than enumerating paths (exponential), :meth:`CostModel.expected_latency`
propagates reach probabilities through the DAG and sums
``P(reach v) * cost(v)`` — algebraically identical for additive costs.
The model also prices Pipeleon's special nodes (flow caches, merged
tables, navigation/migration) so optimization candidates can be compared,
and answers the memory/update-rate questions of the search constraints
(Equation 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.ir.conditionals import ConditionalNode
from repro.ir.entries import ENTRY_OVERHEAD_BYTES, FIELD_BYTES
from repro.ir.program import Program
from repro.ir.tables import (
    MatchType,
    MemoryTier,
    Pipeline,
    TableKind,
    TableNode,
)
from repro.core.profiling import DEFAULT_M, RuntimeProfile
from repro.nic.targets import CoreModel, TargetModel

_UNIT = {t: 1.0 for t in MatchType}


@dataclass(frozen=True)
class CostParams:
    """Cost constants for one core type, as fitted by calibration."""

    lmat_ns: float = 36.0
    lact_ns: float = 4.0
    branch_ns: float = 2.0
    counter_ns: float = 0.0
    insert_ns: float = 0.0  # cache-insertion datapath cost
    match_multiplier: Mapping[MatchType, float] = field(
        default_factory=lambda: dict(_UNIT)
    )
    tier_multiplier: Mapping[MemoryTier, float] = field(
        default_factory=lambda: {
            MemoryTier.EMEM: 1.0,
            MemoryTier.IMEM: 0.5,
            MemoryTier.LMEM: 0.25,
        }
    )
    use_entry_m: bool = True

    @classmethod
    def from_core(
        cls, core: CoreModel, include_counters: bool = False
    ) -> "CostParams":
        return cls(
            lmat_ns=core.lookup_ns,
            lact_ns=core.action_ns,
            branch_ns=core.branch_ns,
            counter_ns=core.counter_update_ns if include_counters else 0.0,
            insert_ns=core.table_insert_ns,
            match_multiplier=dict(core.match_multiplier),
            tier_multiplier=dict(core.tier_multiplier),
            use_entry_m=core.use_entry_m,
        )


class CostModel:
    """Prices programs under a profile; target-independent methodology."""

    def __init__(
        self,
        params: Optional[CostParams] = None,
        cpu_params: Optional[CostParams] = None,
    ):
        self.params = params or CostParams()
        self.cpu_params = cpu_params or self.params
        #: Extra cost charged whenever execution crosses pipelines.
        self.migration_ns: float = 0.0

    @classmethod
    def for_target(
        cls,
        target: TargetModel,
        include_counters: bool = False,
    ) -> "CostModel":
        asic = (
            CostParams.from_core(target.asic, include_counters)
            if target.asic
            else None
        )
        cpu = (
            CostParams.from_core(target.cpu, include_counters)
            if target.cpu
            else None
        )
        model = cls(asic or cpu, cpu or asic)
        model.migration_ns = target.migration_ns
        return model

    def params_for(self, pipeline: Pipeline) -> CostParams:
        return self.params if pipeline is Pipeline.ASIC else self.cpu_params

    # -- per-node pricing -------------------------------------------------------

    def match_cost(
        self, table: TableNode, profile: RuntimeProfile
    ) -> float:
        """Equation 4a: ``m * Lmat`` with target match-type policy."""
        params = self.params_for(table.pipeline)
        match_type = table.worst_match_type
        multiplier = params.match_multiplier.get(match_type, 1.0)
        tier = params.tier_multiplier.get(table.memory_tier, 1.0)
        m = profile.m_for(table) if params.use_entry_m else 1
        return params.lmat_ns * multiplier * max(1, m) * tier

    def action_cost(
        self, table: TableNode, profile: RuntimeProfile
    ) -> float:
        """Equation 4b: probability-weighted primitive count."""
        params = self.params_for(table.pipeline)
        return sum(
            profile.action_prob(table, name) * action.primitive_count
            for name, action in table.actions.items()
        ) * params.lact_ns

    def table_cost(
        self, table: TableNode, profile: RuntimeProfile
    ) -> float:
        params = self.params_for(table.pipeline)
        return (
            self.match_cost(table, profile)
            + self.action_cost(table, profile)
            + params.counter_ns
        )

    def branch_cost(self, node: ConditionalNode) -> float:
        params = self.params_for(node.pipeline)
        return params.branch_ns + params.counter_ns

    def cache_node_cost(
        self,
        program: Program,
        cache: TableNode,
        profile: RuntimeProfile,
    ) -> float:
        """Flow cache: one exact lookup plus replayed effects on a hit."""
        info = cache.cache_info
        params = self.params_for(cache.pipeline)
        assert info is not None
        hit_rate = profile.cache_hit_rate(
            cache.name, info.estimated_hit_rate
        )
        replay = sum(
            self.action_cost(program.table(covered), profile)
            for covered in info.covers
            if covered in program.nodes
        )
        # Misses re-install entries, consuming insertion bandwidth.
        miss_insert = (1.0 - hit_rate) * params.insert_ns
        return (
            params.lmat_ns
            + hit_rate * replay
            + miss_insert
            + params.counter_ns
        )

    def merged_node_cost(
        self,
        program: Program,
        merged: TableNode,
        profile: RuntimeProfile,
    ) -> float:
        """Merged exact cache: one lookup plus combined actions on hit."""
        info = merged.cache_info
        params = self.params_for(merged.pipeline)
        hit_rate = self._merged_hit_rate(program, merged, profile)
        combined = 0.0
        if info is not None:
            combined = sum(
                self.action_cost(program.table(covered), profile)
                for covered in info.covers
                if covered in program.nodes
            )
        return (
            params.lmat_ns + hit_rate * combined + params.counter_ns
        )

    def _merged_hit_rate(
        self,
        program: Program,
        merged: TableNode,
        profile: RuntimeProfile,
    ) -> float:
        measured = profile.cache_hit_rates.get(merged.name)
        if measured is not None:
            return measured
        info = merged.cache_info
        if info is None:
            return 1.0
        hit = 1.0
        for covered in info.covers:
            if covered in program.nodes:
                hit *= profile.hit_prob(program.table(covered))
        return hit

    def node_cost(
        self, program: Program, name: str, profile: RuntimeProfile
    ) -> float:
        node = program.node(name)
        if isinstance(node, ConditionalNode):
            return self.branch_cost(node)
        if node.kind is TableKind.CACHE and node.cache_info:
            if node.cache_info.mode == "flow":
                return self.cache_node_cost(program, node, profile)
            return self.merged_node_cost(program, node, profile)
        if node.kind is TableKind.MERGED:
            return self.merged_node_cost(program, node, profile)
        if node.kind is TableKind.NAVIGATION:
            return self.params_for(node.pipeline).lmat_ns
        if node.kind is TableKind.MIGRATION:
            return self.params_for(node.pipeline).lact_ns
        return self.table_cost(node, profile)

    # -- reach probabilities --------------------------------------------------------

    def reach_probs(
        self, program: Program, profile: RuntimeProfile
    ) -> dict[str, float]:
        """P(a packet reaches each node), accounting for drops."""
        probs: dict[str, float] = {name: 0.0 for name in program.nodes}
        if program.root is None:
            return probs
        probs[program.root] = 1.0
        for name in program.topological_order():
            p = probs.get(name, 0.0)
            if p <= 0:
                continue
            node = program.node(name)
            for succ, weight in self._out_distribution(
                program, node, profile
            ):
                if succ is not None and succ in probs:
                    probs[succ] += p * weight
        return probs

    def _out_distribution(
        self, program: Program, node, profile: RuntimeProfile
    ) -> list[tuple[Optional[str], float]]:
        """(next_node, probability) pairs; dropped mass goes nowhere."""
        if isinstance(node, ConditionalNode):
            p_true = profile.branch_prob(node.name)
            return [
                (node.true_next, p_true),
                (node.false_next, 1.0 - p_true),
            ]
        table: TableNode = node
        info = table.cache_info
        if table.kind is TableKind.CACHE and info and info.mode == "flow":
            hit = profile.cache_hit_rate(
                table.name, info.estimated_hit_rate
            )
            survive = self._covers_survival(program, info, profile)
            return [
                (info.hit_next, hit * survive),
                (info.miss_next, 1.0 - hit),
            ]
        if table.kind is TableKind.MERGED or (
            table.kind is TableKind.CACHE and info and info.mode == "merge"
        ):
            hit = self._merged_hit_rate(program, table, profile)
            survive = self._covers_survival(program, info, profile)
            return [
                (info.hit_next if info else None, hit * survive),
                (info.miss_next if info else None, 1.0 - hit),
            ]
        if table.kind is TableKind.NAVIGATION:
            # Resolved dynamically; treat static next as the common case.
            return [(table.next_map[table.default_action], 1.0)]
        if table.kind is TableKind.MIGRATION:
            return [(table.next_map[table.default_action], 1.0)]
        out: dict[Optional[str], float] = {}
        for action_name, action in table.actions.items():
            p = profile.action_prob(table, action_name)
            if action.drops:
                continue
            succ = table.next_map[action_name]
            out[succ] = out.get(succ, 0.0) + p
        return list(out.items())

    def _covers_survival(
        self, program: Program, info, profile: RuntimeProfile
    ) -> float:
        """P(not dropped | cache hit): covered tables may have cached a drop."""
        if info is None:
            return 1.0
        survive = 1.0
        for covered in info.covers:
            if covered in program.nodes:
                survive *= 1.0 - profile.drop_rate(
                    program.table(covered)
                )
        return survive

    # -- program-level quantities ---------------------------------------------------

    def expected_latency(
        self,
        program: Program,
        profile: RuntimeProfile,
        include_migration: bool = True,
    ) -> float:
        """Equation 1: expected per-packet latency in ns."""
        probs = self.reach_probs(program, profile)
        total = 0.0
        for name, p in probs.items():
            if p <= 0:
                continue
            total += p * self.node_cost(program, name, profile)
        if include_migration and self.migration_ns > 0:
            total += self.migration_ns * self._expected_migrations(
                program, profile, probs
            )
        return total

    def _expected_migrations(
        self,
        program: Program,
        profile: RuntimeProfile,
        probs: dict[str, float],
    ) -> float:
        expected = 0.0
        for name, p in probs.items():
            if p <= 0:
                continue
            node = program.node(name)
            for succ, weight in self._out_distribution(
                program, node, profile
            ):
                if succ is None or succ not in program.nodes:
                    continue
                if program.node(succ).pipeline is not node.pipeline:
                    expected += p * weight
        return expected

    def path_latency(
        self,
        program: Program,
        path: list[str],
        profile: RuntimeProfile,
    ) -> float:
        """Equation 2b: cost of one concrete execution path."""
        return sum(
            self.node_cost(program, name, profile) for name in path
        )

    # -- resource accounting (Equation 5 inputs) ----------------------------------------

    def entry_bytes(self, table: TableNode) -> int:
        return ENTRY_OVERHEAD_BYTES + FIELD_BYTES * max(
            1, len(table.keys)
        )

    def table_memory_bytes(
        self, table: TableNode, profile: RuntimeProfile
    ) -> float:
        """M(v): entries x entry size x m (the paper's approximation)."""
        if table.kind is TableKind.CACHE and table.cache_info:
            # Reserved budget: capacity, not current occupancy.
            return float(
                table.cache_info.capacity * self.entry_bytes(table)
            )
        count = profile.entry_count(table.name)
        m = profile.m_for(table) if self.params.use_entry_m else 1
        return float(count * self.entry_bytes(table) * m)

    def program_memory_bytes(
        self, program: Program, profile: RuntimeProfile
    ) -> float:
        return sum(
            self.table_memory_bytes(t, profile) for t in program.tables()
        )

    def predict(
        self,
        program: Program,
        profile: RuntimeProfile,
        plan=None,
    ) -> "CostPrediction":
        """All three Equation 5 quantities for one deployed config.

        The design-space-exploration harness records this next to the
        measured telemetry of the same cell, so predicted-vs-measured
        ranking reports come from one call site. ``plan`` (when given)
        supplies the control-update demand its caches/merges impose;
        without one the deployment makes no optimizer-driven updates.
        """
        return CostPrediction(
            latency_ns=self.expected_latency(program, profile),
            memory_bytes=self.program_memory_bytes(program, profile),
            update_pps=(
                float(plan.total_update_pps) if plan is not None else 0.0
            ),
        )


@dataclass(frozen=True)
class CostPrediction:
    """The model's answer for one configuration (Equations 1 and 5)."""

    latency_ns: float
    memory_bytes: float
    update_pps: float

    def to_json(self) -> dict:
        return {
            "latency_ns": self.latency_ns,
            "memory_bytes": self.memory_bytes,
            "update_pps": self.update_pps,
        }
