"""Pipeleon core: cost model, pipelets, transforms, search, runtime."""

from repro.core.calibration import (
    CalibrationPoint,
    FittedModel,
    calibrate,
    fit,
    measure_throughput,
    run_suite,
    validate,
)
from repro.core.controller import (
    ControllerOptions,
    PipeleonController,
    TimePoint,
    plan_signature,
)
from repro.core.costmodel import CostModel, CostParams
from repro.core.deployment import Deployment
from repro.core.hotspots import (
    PipeletCost,
    pipelet_latency,
    rank_pipelets,
    top_k,
    traffic_entropy,
)
from repro.core.pipelets import (
    Pipelet,
    PipeletGroup,
    find_groups,
    partition,
)
from repro.core.pipeleon import Pipeleon
from repro.core.placement import (
    PlacementPlan,
    TierBudget,
    apply_placement,
    plan_placement,
    placement_within_budget,
)
from repro.core.plan import (
    Candidate,
    OptimizationPlan,
    ResourceBudget,
    Segment,
    apply_plan,
)
from repro.core.profiling import (
    CounterMap,
    RuntimeProfile,
    collect_profile,
    profile_entropy,
    profile_from_counts,
    profile_from_json,
    profile_to_json,
    uniform_profile,
)
from repro.core.sharded import ShardedDeployment
from repro.core.search import (
    SearchOptions,
    enumerate_segmentations,
    exhaustive_search,
    global_search,
    local_candidates,
    optimize,
)

__all__ = [
    "CalibrationPoint",
    "Candidate",
    "ControllerOptions",
    "CostModel",
    "CostParams",
    "CounterMap",
    "Deployment",
    "FittedModel",
    "OptimizationPlan",
    "PlacementPlan",
    "Pipelet",
    "PipeletCost",
    "PipeletGroup",
    "Pipeleon",
    "PipeleonController",
    "ResourceBudget",
    "RuntimeProfile",
    "SearchOptions",
    "Segment",
    "ShardedDeployment",
    "TimePoint",
    "TierBudget",
    "apply_placement",
    "apply_plan",
    "calibrate",
    "collect_profile",
    "enumerate_segmentations",
    "exhaustive_search",
    "find_groups",
    "fit",
    "global_search",
    "local_candidates",
    "measure_throughput",
    "optimize",
    "partition",
    "pipelet_latency",
    "placement_within_budget",
    "plan_placement",
    "plan_signature",
    "profile_entropy",
    "profile_from_counts",
    "profile_from_json",
    "profile_to_json",
    "rank_pipelets",
    "run_suite",
    "top_k",
    "traffic_entropy",
    "uniform_profile",
    "validate",
]
