"""Sharded deployment: one optimized program replicated across cores.

:class:`ShardedDeployment` composes the single-core :class:`Deployment`
(which owns plan application, entry materialisation and the counter map)
with a :class:`~repro.nic.sharding.ShardedEmulator` forked from the
deployment's fully-configured emulator. The inner deployment's emulator
becomes the *template*: workers inherit its entire state copy-on-write,
then the template stops seeing traffic.

Update flow: the control plane notifies the inner deployment first
(listeners run in registration order), which re-materialises the
template's runtime tables exactly as a single-core deployment would.
This listener then broadcasts the affected tables' post-materialisation
entry lists — plus the covering-cache invalidation — to every worker,
epoch-tagged, through each worker's FIFO command pipe. A worker has
therefore always applied an update before replaying any batch dispatched
after it, and its fast path recompiles automatically off the bumped
runtime-table versions.

Profiling is shard-merged: each worker's counter bank is translated and
profiled independently, the per-shard :class:`RuntimeProfile`\\ s are
folded with :meth:`RuntimeProfile.merge` (support-weighted, so pooled
probabilities are recovered), and control-plane-authoritative facts
(entry counts, measured ``m``, update rates) are filled in once from the
parent's shadow store.

Unlike single-core redeployment, a sharded redeploy always cold-starts
flow caches: worker cache state lives in the worker processes and dies
with them (carrying it across a fork boundary would cost more than the
warm-up it saves at these cache sizes).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.deployment import Deployment
from repro.core.plan import OptimizationPlan
from repro.core.profiling import (
    RuntimeProfile,
    collect_profile,
    measure_table_m,
)
from repro.ir.entries import TableEntry
from repro.ir.program import Program
from repro.nic.control_plane import ControlPlane, SimClock, UpdateEvent
from repro.nic.faults import FaultPlan
from repro.nic.packet import Packet
from repro.nic.sharding import ShardedEmulator, SupervisorOptions
from repro.nic.stats import RunStats
from repro.nic.targets import TargetModel
from repro.telemetry.live import (
    LiveAggregator,
    LiveOptions,
    LivePlane,
    MetricsServer,
)


class ShardedDeployment:
    """A deployment whose data plane is N flow-hash shard workers."""

    def __init__(
        self,
        original: Program,
        target: TargetModel,
        n_workers: int = 2,
        plan: Optional[OptimizationPlan] = None,
        control_plane: Optional[ControlPlane] = None,
        clock: Optional[SimClock] = None,
        batch: int = 256,
        sample_stride: int = 1,
        instrument: bool = True,
        cache_capacity: int = 4096,
        cache_insertion_limit_pps: float = 10000.0,
        default_hit_rate: float = 0.9,
        native_cache: Optional[bool] = None,
        previous: Optional[object] = None,
        telemetry=None,
        supervisor: Optional[SupervisorOptions] = None,
        fault_plan: Optional[FaultPlan] = None,
        transport: str = "shm",
        ring_slots: Optional[int] = None,
        engine: str = "auto",
        live: Optional[LiveOptions] = None,
        live_plane: Optional[LivePlane] = None,
    ):
        # ``previous`` is accepted for signature parity with Deployment
        # but ignored: sharded redeploys cold-start caches (see module
        # docstring). Telemetry does carry across, like Deployment's.
        if telemetry is None and previous is not None:
            telemetry = getattr(previous, "telemetry", None)
        self.telemetry = telemetry
        if live_plane is not None:
            if live is not None:
                raise ValueError(
                    "pass either live= (per-deployment plane) or "
                    "live_plane= (shared daemon plane), not both"
                )
            # The shared plane's cadence drives the workers' sidecar
            # snapshots; the plane itself owns aggregator and server.
            live_cadence = live_plane.options
        else:
            live_cadence = live
        self.deployment = Deployment(
            original,
            target,
            plan=plan,
            control_plane=control_plane,
            clock=clock,
            sample_stride=sample_stride,
            instrument=instrument,
            cache_capacity=cache_capacity,
            cache_insertion_limit_pps=cache_insertion_limit_pps,
            default_hit_rate=default_hit_rate,
            native_cache=native_cache,
            telemetry=telemetry,
        )
        self.original = original
        self.target = target
        self.plan = plan
        self.n_workers = n_workers
        self.control_plane = self.deployment.control_plane
        self.clock = self.deployment.clock
        self.counter_map = self.deployment.counter_map
        self.program = self.deployment.program
        # Everything past the inner deployment can fork workers, spawn
        # threads and bind ports: tear down whatever came up if any
        # later step raises, so a failed construction never leaks
        # worker processes, aggregator threads or listening sockets.
        self.live: Optional[LiveAggregator] = None
        self.live_server: Optional[MetricsServer] = None
        self.live_plane = live_plane
        self.emulator = None
        try:
            # Fork AFTER materialize_all: workers inherit installed
            # entries.
            self.emulator = ShardedEmulator(
                self.deployment.emulator,
                n_workers,
                batch=batch,
                clock=self.clock,
                options=supervisor,
                telemetry=telemetry,
                fault_plan=fault_plan,
                transport=transport,
                ring_slots=ring_slots,
                engine=engine,
                live_interval_s=(
                    live_cadence.interval_s
                    if live_cadence is not None
                    else None
                ),
                live_every_packets=(
                    live_cadence.every_packets
                    if live_cadence is not None
                    else None
                ),
            )
            self.transport = self.emulator.transport
            self.engine = self.emulator.engine
            #: Live telemetry plane (None unless ``live=`` was given):
            #: the aggregator thread starts immediately — workers
            #: heartbeat even between replays — and the scrape endpoint
            #: comes up when ``live.serve_port`` is set. With a shared
            #: ``live_plane=`` the deployment instead adopts into the
            #: daemon-lifetime aggregator.
            if live_plane is not None:
                live_plane.adopt(self.emulator)
            elif live is not None:
                self.live = LiveAggregator(
                    self.emulator, telemetry=telemetry, options=live
                ).start()
                if live.serve_port is not None:
                    self.live_server = MetricsServer(
                        self.live,
                        port=live.serve_port,
                        host=live.serve_host,
                    ).start()
        except BaseException:
            self._teardown()
            self.deployment.close()
            raise
        self.control_plane.add_listener(self._on_update)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardedDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.control_plane.remove_listener(self._on_update)
        finally:
            try:
                self._teardown()
            finally:
                self.deployment.close()

    def _teardown(self) -> None:
        """Stop live plane then workers; every step runs even if an
        earlier one raises (no leaked threads, ports or processes)."""
        try:
            # Live plane first: the aggregator's final flush reads the
            # workers' last snapshots and the emulator's shard status,
            # so both must still exist. A shared plane is *released*
            # (final totals folded into its carry base), never stopped:
            # it belongs to the daemon, not this deployment.
            if self.live_plane is not None:
                self.live_plane.release()
        finally:
            try:
                if self.live_server is not None:
                    self.live_server.stop()
            finally:
                try:
                    if self.live is not None:
                        self.live.stop()
                finally:
                    if self.emulator is not None:
                        self.emulator.close()

    # -- update broadcast --------------------------------------------------

    def _on_update(self, event: UpdateEvent) -> None:
        # Runs after Deployment._on_update: the template's runtime
        # tables already reflect the event, so broadcast their state.
        if event.op == "flush":
            self.emulator.flush_caches()
            return
        runtime_tables = self.deployment.emulator.runtime_tables
        for name in self.deployment.affected_runtime_tables(event.table):
            runtime = runtime_tables[name]
            self.emulator.set_table_entries(
                name, [entry.clone() for entry in runtime.entries()]
            )
        self.emulator.invalidate_caches_covering(event.table)

    # -- control-plane passthrough API -------------------------------------

    def insert_entry(self, table: str, entry: TableEntry) -> int:
        return self.control_plane.insert_entry(table, entry)

    def insert_entries(
        self, table: str, entries: Iterable[TableEntry]
    ) -> list[int]:
        return self.control_plane.insert_entries(table, entries)

    def delete_entry(self, table: str, entry_id: int) -> TableEntry:
        return self.control_plane.delete_entry(table, entry_id)

    def modify_entry(
        self, table: str, entry_id: int, new_entry: TableEntry
    ) -> None:
        self.control_plane.modify_entry(table, entry_id, new_entry)

    # -- telemetry ---------------------------------------------------------

    @property
    def materialized_updates(self) -> dict[str, int]:
        return self.deployment.materialized_updates

    @property
    def worker_respawns(self) -> list[int]:
        """Per-shard respawn counts (recovery="respawn")."""
        return list(self.emulator.respawns)

    @property
    def degraded_shards(self) -> list[int]:
        """Shards lost to degraded-mode recovery (empty when healthy)."""
        return self.emulator.degraded_shards

    @property
    def lost_packets(self) -> int:
        """Cumulative packets lost with degraded shards."""
        return self.emulator.lost_packets

    def transport_stats(self) -> dict:
        """Ring/pipe dispatch counters (see ShardedEmulator)."""
        return self.emulator.transport_stats()

    @property
    def columnar_demotions(self) -> dict[str, int]:
        """Merged per-reason columnar demotion counts (last collection)."""
        return self.emulator.columnar_demotions

    @property
    def columnar_packets(self) -> int:
        """Packets the workers' columnar kernels fully retired."""
        return self.emulator.columnar_packets

    @property
    def columnar_partitions(self) -> int:
        """Merged flow-key partition count from the batch kernels."""
        return self.emulator.columnar_partitions

    @property
    def tracer(self):
        """Merged per-worker packet tracer (None until a collection).

        Workers fork with an independent copy of the template's tracer;
        replay/collect ships the per-shard tracers back and folds them.
        """
        return self.emulator.tracer

    def cache_hit_rates(self) -> dict[str, float]:
        """Merged hit rates (replay refreshes the merged view)."""
        rates: dict[str, float] = {}
        for name, stats in self.emulator.cache_stats.items():
            if stats.lookups:
                rates[name] = stats.hit_rate
        snapshot = self.emulator.counters.snapshot()
        merged_counts: dict[str, dict[str, float]] = {}
        for key, count in snapshot.items():
            if key[0] == "cache":
                merged_counts.setdefault(key[1], {})[key[2]] = count
        for name, legs in merged_counts.items():
            total = legs.get("hit", 0.0) + legs.get("miss", 0.0)
            if total:
                rates.setdefault(name, legs.get("hit", 0.0) / total)
        return rates

    def profile(
        self,
        update_window_s: float = 10.0,
        offered_pps: float = 1e6,
    ) -> RuntimeProfile:
        """Per-shard profiles, support-merged, in original coordinates."""
        sharded = self.emulator
        sharded.collect()
        merged: Optional[RuntimeProfile] = None
        share = offered_pps / max(1, sharded.n_workers)
        for state in sharded.worker_states:
            shard_profile = collect_profile(
                self.original,
                state["counters"].snapshot(),
                counter_map=self.counter_map,
                offered_pps=share,
            )
            for name, stats in state["cache_stats"].items():
                if stats.lookups:
                    shard_profile.cache_hit_rates[name] = stats.hit_rate
                    shard_profile.cache_support[name] = float(
                        stats.lookups
                    )
            merged = (
                shard_profile
                if merged is None
                else merged.merge(shard_profile)
            )
        if merged is None:  # pragma: no cover - n_workers >= 1 always
            merged = RuntimeProfile(offered_pps=offered_pps)
        # Control-plane facts are global, not per-shard: fill them once
        # from the authoritative shadow store.
        for table_name, entries in self.control_plane.snapshot().items():
            if table_name not in self.original.nodes:
                continue
            node = self.original.table(table_name)
            merged.entry_counts[table_name] = len(entries)
            merged.table_m[table_name] = measure_table_m(node, entries)
        merged.update_rates = self.control_plane.update_rates(
            window_s=update_window_s
        )
        return merged

    def reset_telemetry(self) -> None:
        self.emulator.reset_telemetry()
        self.deployment.reset_telemetry()

    # -- traffic -----------------------------------------------------------

    def replay(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
        batch: Optional[int] = None,
        packet_pool=None,
    ) -> RunStats:
        return self.emulator.replay(
            packets,
            offered_pps=offered_pps,
            batch=batch,
            packet_pool=packet_pool,
        )

    def run(
        self,
        packets: Iterable[Packet],
        offered_pps: Optional[float] = None,
    ) -> RunStats:
        """Sharded data planes only run the compiled fast path.

        Replay is stats-identical to the interpreter (the fast path's
        core guarantee), so scenario drivers can call ``run`` on either
        deployment flavour.
        """
        return self.replay(packets, offered_pps=offered_pps)

    def throughput_gbps(self, stats: RunStats) -> float:
        return stats.throughput_gbps(self.target)
