"""Pipelet formation (§4.1.1).

A pipelet is a branch-free run of MA tables — the paper's domain-specific
analogue of a basic block. Programs are partitioned at conditional
branches and at switch-case tables (tables whose actions route to
different next nodes); switch-case tables form their own single-table
pipelets. Long runs are further split (``max_len``), and neighbouring
pipelets under a common branch that reconverge can be grouped for joint
optimization (pipelet groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ir.conditionals import ConditionalNode
from repro.ir.program import Program
from repro.ir.tables import TableKind, TableNode


@dataclass(frozen=True)
class Pipelet:
    """A maximal (bounded) branch-free table run."""

    pipelet_id: str
    table_names: tuple[str, ...]
    entry: str  # first node of the run
    exit_next: Optional[str]  # node reached after the run (None = sink)
    is_switch_case: bool = False

    def __len__(self) -> int:
        return len(self.table_names)

    def tables(self, program: Program) -> list[TableNode]:
        return [program.table(name) for name in self.table_names]


@dataclass(frozen=True)
class PipeletGroup:
    """Pipelets under one branch that reconverge to a single node.

    The group has exactly one entry (the branch node) and one exit;
    Pipeleon can optimize across it, e.g. with a cache spanning both
    sides of the diamond (§4.1.1, §5.4.4). When the reconvergence point
    is itself a pipelet in the hot set, it joins the group (Figure 8's
    larger "Group 1-2-3-4" blocks): the group cache then covers the
    taken side *and* the continuation with a single lookup — which is
    where cross-pipelet optimization beats per-pipelet caching on
    short-pipelet programs.
    """

    group_id: str
    branch: str
    members: tuple[Pipelet, ...]  # (true side, false side)
    exit_next: Optional[str]
    join: Optional[Pipelet] = None  # reconvergence pipelet, if grouped

    def table_names(self) -> tuple[str, ...]:
        names: list[str] = []
        for member in self.members:
            names.extend(member.table_names)
        if self.join is not None:
            names.extend(self.join.table_names)
        return tuple(names)


def _is_plain_table(program: Program, name: str) -> bool:
    node = program.nodes.get(name)
    return (
        isinstance(node, TableNode)
        and node.kind is TableKind.PLAIN
        and not node.is_switch_case
    )


def _single_next(node: TableNode) -> Optional[str]:
    nexts = set(node.next_map.values())
    if len(nexts) != 1:
        return None
    return next(iter(nexts))


def partition(program: Program, max_len: int = 6) -> list[Pipelet]:
    """Split the program into pipelets.

    Run starts are: the root, successors of conditionals and switch-case
    tables, and any node with multiple predecessors (joins). Runs extend
    through plain single-next tables whose successor has exactly one
    predecessor. Switch-case tables become their own pipelets. Runs
    longer than ``max_len`` are chopped up (§4.1.1: "Pipeleon further
    partitions large pipelets into smaller ones").
    """
    if program.root is None:
        return []
    reachable = program.reachable()
    predecessor_count: dict[str, int] = {name: 0 for name in reachable}
    for name in reachable:
        for succ in program.successors(name):
            if succ in predecessor_count:
                predecessor_count[succ] += 1

    starts: set[str] = {program.root}
    for name in reachable:
        node = program.node(name)
        for succ in program.successors(name):
            if isinstance(node, ConditionalNode):
                starts.add(succ)
            elif isinstance(node, TableNode) and node.is_switch_case:
                starts.add(succ)
        if predecessor_count[name] > 1:
            starts.add(name)
        if isinstance(node, TableNode) and (
            node.is_switch_case or node.kind is not TableKind.PLAIN
        ):
            starts.add(name)

    pipelets: list[Pipelet] = []
    visited: set[str] = set()
    ordered = program.topological_order()
    for name in ordered:
        if name in visited or name not in starts:
            continue
        node = program.node(name)
        if isinstance(node, ConditionalNode):
            continue  # conditionals separate pipelets, never join them
        if not isinstance(node, TableNode):
            continue
        if node.is_switch_case or node.kind is not TableKind.PLAIN:
            visited.add(name)
            pipelets.append(
                Pipelet(
                    pipelet_id=f"pl_{len(pipelets)}",
                    table_names=(name,),
                    entry=name,
                    exit_next=None,
                    is_switch_case=True,
                )
            )
            continue
        run = [name]
        visited.add(name)
        current = node
        while True:
            nxt = _single_next(current)
            if (
                nxt is None
                or nxt not in reachable
                or nxt in starts
                or nxt in visited
                or not _is_plain_table(program, nxt)
            ):
                break
            run.append(nxt)
            visited.add(nxt)
            current = program.table(nxt)
        exit_next = _single_next(current)
        for chunk_start in range(0, len(run), max_len):
            chunk = run[chunk_start:chunk_start + max_len]
            last = program.table(chunk[-1])
            chunk_exit = _single_next(last)
            pipelets.append(
                Pipelet(
                    pipelet_id=f"pl_{len(pipelets)}",
                    table_names=tuple(chunk),
                    entry=chunk[0],
                    exit_next=chunk_exit,
                )
            )
    return pipelets


def pipelet_probability(
    program: Program,
    pipelet: Pipelet,
    reach_probs: dict[str, float],
) -> float:
    """P(G'): probability a packet reaches the pipelet's entry."""
    return reach_probs.get(pipelet.entry, 0.0)


def find_groups(
    program: Program, pipelets: Sequence[Pipelet]
) -> list[PipeletGroup]:
    """Detect diamond groups among the given pipelets.

    A group forms when a conditional's two successors are the entries of
    two of the given pipelets and both pipelets exit to the same node
    (one entry in, one exit out — the paper's restriction).
    """
    by_entry = {p.entry: p for p in pipelets if not p.is_switch_case}
    groups: list[PipeletGroup] = []
    for conditional in program.conditionals():
        true_pl = by_entry.get(conditional.true_next or "")
        false_pl = by_entry.get(conditional.false_next or "")
        if true_pl is None or false_pl is None or true_pl is false_pl:
            continue
        if true_pl.exit_next != false_pl.exit_next:
            continue
        # Absorb the reconvergence pipelet when it is also selected and
        # linear: the group then spans branch + sides + continuation.
        join = by_entry.get(true_pl.exit_next or "")
        exit_next = true_pl.exit_next
        if join is not None and not join.is_switch_case:
            exit_next = join.exit_next
        else:
            join = None
        groups.append(
            PipeletGroup(
                group_id=f"grp_{conditional.name}",
                branch=conditional.name,
                members=(true_pl, false_pl),
                exit_next=exit_next,
                join=join,
            )
        )
    return groups
