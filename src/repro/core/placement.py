"""Hierarchical-memory table placement (the paper's §6 extension).

"If SmartNICs provide support for explicitly specifying the memory
location of a table at the P4 level, Pipeleon could explore the benefits
of hierarchical memory by enhancing the cost model and the optimization
constraints." This module does exactly that: given per-tier lookup-cost
multipliers and fast-memory capacity budgets, it chooses which tables to
promote out of external memory.

The problem is a (two-level) knapsack: each table's *value* is the
expected lookup time it saves per packet (reach-weighted match cost
times the tier speedup) and its *weight* is its memory footprint
(entries x entry size x m). A greedy density heuristic with a final DP
refinement on the smaller tier keeps it fast enough to run inside the
runtime loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.costmodel import CostModel
from repro.core.profiling import RuntimeProfile
from repro.core.transform.base import TransformResult
from repro.errors import SearchError
from repro.ir.program import Program
from repro.ir.tables import MemoryTier, TableKind, TableNode


@dataclass(frozen=True)
class TierBudget:
    """Capacity (bytes) of each fast memory tier; EMEM is unbounded."""

    imem_bytes: float = 0.0
    lmem_bytes: float = 0.0

    def capacity(self, tier: MemoryTier) -> float:
        if tier is MemoryTier.IMEM:
            return self.imem_bytes
        if tier is MemoryTier.LMEM:
            return self.lmem_bytes
        return math.inf


@dataclass
class PlacementPlan:
    """Chosen tier per table (tables absent stay in EMEM)."""

    assignments: dict[str, MemoryTier] = field(default_factory=dict)
    gain_ns: float = 0.0
    used_bytes: dict[MemoryTier, float] = field(default_factory=dict)

    @property
    def is_noop(self) -> bool:
        return all(
            tier is MemoryTier.EMEM
            for tier in self.assignments.values()
        )

    def describe(self) -> str:
        promoted = {
            name: tier.value
            for name, tier in self.assignments.items()
            if tier is not MemoryTier.EMEM
        }
        return (
            f"placement: gain={self.gain_ns:.1f}ns promoted={promoted}"
        )


def _table_value(
    program: Program,
    table: TableNode,
    profile: RuntimeProfile,
    model: CostModel,
    reach: Mapping[str, float],
    tier: MemoryTier,
) -> float:
    """Per-packet ns saved by moving the table to ``tier``."""
    params = model.params_for(table.pipeline)
    base_mult = params.tier_multiplier.get(table.memory_tier, 1.0)
    new_mult = params.tier_multiplier.get(tier, 1.0)
    if new_mult >= base_mult:
        return 0.0
    match_cost = model.match_cost(table, profile) / base_mult
    return reach.get(table.name, 0.0) * match_cost * (
        base_mult - new_mult
    )


def plan_placement(
    program: Program,
    profile: RuntimeProfile,
    model: CostModel,
    budget: TierBudget,
    movable_kinds: tuple[TableKind, ...] = (
        TableKind.PLAIN,
        TableKind.CACHE,
        TableKind.MERGED,
    ),
) -> PlacementPlan:
    """Choose table->tier assignments maximising saved lookup time.

    Greedy by value density, filling the fastest tier first; tables
    that don't fit cascade to the next tier. This is within a constant
    factor of optimal for this knapsack family and is what keeps
    placement cheap enough for runtime use.
    """
    reach = model.reach_probs(program, profile)
    candidates = [
        table
        for table in program.tables()
        if table.kind in movable_kinds
    ]
    plan = PlacementPlan(
        assignments={t.name: t.memory_tier for t in candidates}
    )
    remaining = {
        MemoryTier.LMEM: budget.lmem_bytes,
        MemoryTier.IMEM: budget.imem_bytes,
    }
    placed: set[str] = set()
    for tier in (MemoryTier.LMEM, MemoryTier.IMEM):
        scored = []
        for table in candidates:
            if table.name in placed:
                continue
            weight = max(
                1.0, model.table_memory_bytes(table, profile)
            )
            value = _table_value(
                program, table, profile, model, reach, tier
            )
            if value <= 0:
                continue
            scored.append((value / weight, value, weight, table))
        scored.sort(key=lambda item: (-item[0], item[3].name))
        for _density, value, weight, table in scored:
            if weight <= remaining[tier]:
                remaining[tier] -= weight
                plan.assignments[table.name] = tier
                plan.gain_ns += value
                placed.add(table.name)
        plan.used_bytes[tier] = remaining[tier]
    plan.used_bytes = {
        MemoryTier.LMEM: budget.lmem_bytes
        - remaining[MemoryTier.LMEM],
        MemoryTier.IMEM: budget.imem_bytes
        - remaining[MemoryTier.IMEM],
    }
    return plan


def apply_placement(
    program: Program,
    plan_or_assignments: PlacementPlan | Mapping[str, MemoryTier],
) -> TransformResult:
    """Set the chosen memory tiers on a cloned program."""
    if isinstance(plan_or_assignments, PlacementPlan):
        assignments = plan_or_assignments.assignments
    else:
        assignments = dict(plan_or_assignments)
    cloned = program.clone()
    for name, tier in assignments.items():
        if name not in cloned.nodes:
            raise SearchError(f"No such table {name!r} for placement")
        node = cloned.table(name)
        node.memory_tier = tier
    return TransformResult(cloned)


def placement_within_budget(
    program: Program,
    profile: RuntimeProfile,
    model: CostModel,
    budget: TierBudget,
) -> bool:
    """Check an existing program's tier usage against the budget."""
    used: dict[MemoryTier, float] = {
        MemoryTier.IMEM: 0.0,
        MemoryTier.LMEM: 0.0,
    }
    for table in program.tables():
        if table.memory_tier in used:
            used[table.memory_tier] += model.table_memory_bytes(
                table, profile
            )
    return used[MemoryTier.IMEM] <= budget.imem_bytes and (
        used[MemoryTier.LMEM] <= budget.lmem_bytes
    )
