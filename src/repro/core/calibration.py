"""Cost-model calibration (§3.1, "Methodology and results").

The paper extracts ``Lmat``, ``Lact`` and ``m`` by benchmarking >300
programs on real hardware, using the reciprocal of maximum throughput as
relative latency and fitting linear regressions. We apply the identical
methodology with the emulator standing in for the hardware: the fitted
parameters never peek at the emulator's configured constants, so Figure 5
genuinely validates the *methodology* (model vs measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.costmodel import CostModel, CostParams
from repro.errors import CalibrationError
from repro.ir.builder import linear_program
from repro.ir.entries import LpmValue, TableEntry, TernaryValue
from repro.ir.program import Program
from repro.ir.tables import MatchType
from repro.nic.emulator import NicEmulator
from repro.nic.packet import make_packet
from repro.nic.targets import TargetModel
from repro.traffic.flows import synth_flows


@dataclass(frozen=True)
class CalibrationPoint:
    """One benchmark program's measurement."""

    kind: str  # "exact" | "primitives" | "lpm" | "ternary"
    x: int  # swept parameter value
    throughput_gbps: float

    @property
    def relative_latency(self) -> float:
        """Reciprocal throughput — the paper's latency proxy."""
        if self.throughput_gbps <= 0:
            raise CalibrationError("Zero throughput measurement")
        return 1.0 / self.throughput_gbps


@dataclass
class FittedModel:
    """Calibration output: constants in reciprocal-throughput units."""

    lmat: float
    lact: float
    intercept: float
    m_lpm: float
    m_ternary: float
    points: list[CalibrationPoint] = field(default_factory=list)

    def cost_params(self) -> CostParams:
        """Cost parameters (arbitrary units; only ratios matter)."""
        return CostParams(
            lmat_ns=self.lmat,
            lact_ns=self.lact,
            branch_ns=self.lmat / 10.0,
            match_multiplier={
                MatchType.EXACT: 1.0,
                MatchType.LPM: self.m_lpm,
                MatchType.TERNARY: self.m_ternary,
                MatchType.RANGE: self.m_ternary,
            },
            use_entry_m=False,
        )

    def cost_model(self) -> CostModel:
        return CostModel(self.cost_params())

    def predict_relative_latency(
        self,
        n_tables: int,
        n_primitives: int = 1,
        n_actions: int = 2,
        match_type: MatchType = MatchType.EXACT,
    ) -> float:
        """Model prediction for a uniform chain program."""
        multiplier = {
            MatchType.EXACT: 1.0,
            MatchType.LPM: self.m_lpm,
            MatchType.TERNARY: self.m_ternary,
            MatchType.RANGE: self.m_ternary,
        }[match_type]
        per_table = self.lmat * multiplier + self.lact * n_primitives
        return self.intercept + n_tables * per_table


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _entries_for(
    program: Program,
    match_type: MatchType,
    n_prefixes: int = 3,
    n_masks: int = 5,
) -> dict[str, list[TableEntry]]:
    """Install entries that give LPM/ternary tables their paper-shaped m."""
    entries: dict[str, list[TableEntry]] = {}
    for table in program.tables():
        rows: list[TableEntry] = []
        action = next(iter(table.actions))
        if match_type is MatchType.LPM:
            for i in range(n_prefixes):
                rows.append(
                    TableEntry(
                        (LpmValue(0x0A000000 + (i << 8), 8 + 4 * i),),
                        action,
                    )
                )
        elif match_type is MatchType.TERNARY:
            for i in range(n_masks):
                rows.append(
                    TableEntry(
                        (TernaryValue(i + 1, 0xFF << (4 * i)),),
                        action,
                        priority=i,
                    )
                )
        entries[table.name] = rows
    return entries


def measure_throughput(
    program: Program,
    target: TargetModel,
    entries: Optional[dict[str, list[TableEntry]]] = None,
    n_packets: int = 400,
) -> float:
    """Max throughput (Gbps) of a program on the emulated target."""
    emulator = NicEmulator(
        program, target, instrument=False, native_cache=False
    )
    if entries:
        for table, rows in entries.items():
            if table in emulator.runtime_tables and rows:
                emulator.set_table_entries(
                    table, (r.clone() for r in rows)
                )
    flows = synth_flows(64)
    packets = [
        flows[i % len(flows)].packet() for i in range(n_packets)
    ]
    stats = emulator.run(packets)
    return stats.throughput_gbps(target)


def run_suite(
    target: TargetModel,
    exact_lengths: Sequence[int] = tuple(range(4, 41, 2)),
    primitive_counts: Sequence[int] = tuple(range(1, 9)),
    lpm_lengths: Sequence[int] = tuple(range(8, 17, 2)),
    ternary_lengths: Sequence[int] = tuple(range(8, 17, 2)),
    primitives_base_tables: int = 20,
    n_packets: int = 400,
) -> list[CalibrationPoint]:
    """The paper's benchmarking suite: four parameter sweeps."""
    points: list[CalibrationPoint] = []
    for n in exact_lengths:
        program = linear_program(f"cal_exact_{n}", n, MatchType.EXACT)
        points.append(
            CalibrationPoint(
                "exact",
                n,
                measure_throughput(program, target, None, n_packets),
            )
        )
    for n_prims in primitive_counts:
        program = linear_program(
            f"cal_prim_{n_prims}",
            primitives_base_tables,
            MatchType.EXACT,
            n_primitives=n_prims,
        )
        points.append(
            CalibrationPoint(
                "primitives",
                n_prims,
                measure_throughput(program, target, None, n_packets),
            )
        )
    for n in lpm_lengths:
        program = linear_program(f"cal_lpm_{n}", n, MatchType.LPM)
        entries = _entries_for(program, MatchType.LPM)
        points.append(
            CalibrationPoint(
                "lpm",
                n,
                measure_throughput(program, target, entries, n_packets),
            )
        )
    for n in ternary_lengths:
        program = linear_program(
            f"cal_ternary_{n}", n, MatchType.TERNARY
        )
        entries = _entries_for(program, MatchType.TERNARY)
        points.append(
            CalibrationPoint(
                "ternary",
                n,
                measure_throughput(program, target, entries, n_packets),
            )
        )
    return points


# ---------------------------------------------------------------------------
# Fitting (the paper's linear regressions)
# ---------------------------------------------------------------------------


def fit(
    points: Sequence[CalibrationPoint],
    n_actions: int = 2,
    default_primitives: int = 1,
    primitives_base_tables: int = 20,
) -> FittedModel:
    """Extract Lmat/Lact/m from the sweep measurements.

    * exact sweep:      y1 = A1 * x + B1 with A1 = Lmat + p * Lact
    * primitives sweep: y2 = A2 * p + B2 with A2 = n_tables * Lact
    * lpm/ternary:      slope ratio vs exact gives the multiplier m.
    """
    def sweep(kind: str) -> tuple[np.ndarray, np.ndarray]:
        xs = np.array(
            [p.x for p in points if p.kind == kind], dtype=float
        )
        ys = np.array(
            [p.relative_latency for p in points if p.kind == kind]
        )
        if len(xs) < 2:
            raise CalibrationError(
                f"Need at least 2 points for {kind!r} sweep, got "
                f"{len(xs)}"
            )
        return xs, ys

    exact_x, exact_y = sweep("exact")
    a1, b1 = np.polyfit(exact_x, exact_y, 1)

    prim_x, prim_y = sweep("primitives")
    a2, _b2 = np.polyfit(prim_x, prim_y, 1)
    lact = a2 / primitives_base_tables
    lmat = a1 - default_primitives * lact
    if lmat <= 0 or lact < 0:
        raise CalibrationError(
            f"Degenerate fit: lmat={lmat}, lact={lact}"
        )

    def slope_multiplier(kind: str) -> float:
        xs, ys = sweep(kind)
        slope, _ = np.polyfit(xs, ys, 1)
        return max(1.0, (slope - default_primitives * lact) / lmat)

    return FittedModel(
        lmat=float(lmat),
        lact=float(lact),
        intercept=float(b1),
        m_lpm=float(slope_multiplier("lpm")),
        m_ternary=float(slope_multiplier("ternary")),
        points=list(points),
    )


def calibrate(
    target: TargetModel, n_packets: int = 400
) -> FittedModel:
    """End-to-end §3.1 methodology against an emulated target."""
    return fit(run_suite(target, n_packets=n_packets))


# ---------------------------------------------------------------------------
# Validation (Figure 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValidationRow:
    scenario: str
    x: int
    measured_gbps: float
    predicted_norm: float  # model throughput, normalised to measurement
    deviation: float  # |predicted_norm - 1|


def validate(
    fitted: FittedModel,
    target: TargetModel,
    scenarios: Optional[
        Sequence[tuple[str, int, int, MatchType]]
    ] = None,
    n_packets: int = 400,
) -> list[ValidationRow]:
    """Predict new programs and compare against emulator measurement.

    Each scenario is ``(kind, n_tables, n_primitives, match_type)``.
    Predictions and measurements are normalised within each kind (the
    paper normalises to hardware), so the comparison checks *relative*
    accuracy exactly as Figure 5 does.
    """
    if scenarios is None:
        scenarios = (
            [("exact", n, 1, MatchType.EXACT) for n in (10, 20, 30, 40)]
            + [
                ("primitives", 20, p, MatchType.EXACT)
                for p in (2, 4, 6, 8)
            ]
            + [("lpm", n, 1, MatchType.LPM) for n in (10, 12, 14, 16)]
            + [
                ("ternary", n, 1, MatchType.TERNARY)
                for n in (10, 12, 14, 16)
            ]
        )
    rows: list[ValidationRow] = []
    for kind, n_tables, n_prims, match_type in scenarios:
        program = linear_program(
            f"val_{kind}_{n_tables}_{n_prims}",
            n_tables,
            match_type,
            n_primitives=n_prims,
        )
        entries = (
            _entries_for(program, match_type)
            if match_type is not MatchType.EXACT
            else None
        )
        measured = measure_throughput(
            program, target, entries, n_packets
        )
        x = n_prims if kind == "primitives" else n_tables
        predicted_latency = fitted.predict_relative_latency(
            n_tables, n_prims, match_type=match_type
        )
        predicted_gbps = 1.0 / predicted_latency
        # The prediction saturates at line rate just like the hardware.
        predicted_gbps = min(predicted_gbps, target.line_rate_gbps)
        measured_capped = min(measured, target.line_rate_gbps)
        norm = (
            predicted_gbps / measured_capped
            if measured_capped > 0
            else float("inf")
        )
        rows.append(
            ValidationRow(
                scenario=kind,
                x=x,
                measured_gbps=measured,
                predicted_norm=norm,
                deviation=abs(norm - 1.0),
            )
        )
    return rows


def mean_deviation(rows: Sequence[ValidationRow]) -> float:
    if not rows:
        return 0.0
    return sum(r.deviation for r in rows) / len(rows)
