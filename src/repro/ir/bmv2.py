"""Importer for real p4c/BMv2 compiler JSON.

`repro.ir.json_io` defines this project's own interchange format; this
module additionally accepts the artifact an actual P4 toolchain emits
(`p4c-bm2-ss program.p4 -o program.json`), which is what the paper's
prototype consumes. The supported subset covers what match-action
optimization needs: pipelines with tables/conditionals, action
primitives with runtime data, match keys, and default entries.

Unsupported BMv2 features (registers, meters, checksums, parser state
machines) are outside Pipeleon's optimization scope; encountering one
in an *action body* degrades to a cost-equivalent ``no_op`` primitive
(the cost model only counts primitives), while structural features we
cannot represent raise :class:`IrError`.
"""

from __future__ import annotations

import json
from typing import Any, IO, Mapping, Optional

from repro.errors import IrError
from repro.ir.actions import Action, ActionPrimitive, Param
from repro.ir.conditionals import Condition, ConditionalNode
from repro.ir.program import Program
from repro.ir.tables import MatchKey, MatchType, TableNode

_MATCH_TYPES = {
    "exact": MatchType.EXACT,
    "lpm": MatchType.LPM,
    "ternary": MatchType.TERNARY,
    "range": MatchType.RANGE,
    # 'valid' matches degrade to exact on the validity bit.
    "valid": MatchType.EXACT,
}

_RELATIONAL_OPS = {
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


def _field_name(target: Any) -> str:
    """BMv2 field refs are ["header", "field"] lists."""
    if isinstance(target, list) and len(target) == 2:
        return f"{target[0]}.{target[1]}"
    if isinstance(target, str):
        return target
    raise IrError(f"Unsupported field reference {target!r}")


def _value_of(operand: Mapping[str, Any]) -> int:
    kind = operand.get("type")
    value = operand.get("value")
    if kind == "hexstr":
        return int(str(value), 16)
    if kind in ("int", "bool"):
        return int(value)
    raise IrError(f"Unsupported constant operand {operand!r}")


def _convert_primitive(primitive: Mapping[str, Any]) -> ActionPrimitive:
    op = primitive.get("op")
    params = primitive.get("parameters", [])

    def arg(index: int) -> Any:
        operand = params[index]
        kind = operand.get("type")
        if kind == "field":
            return _field_name(operand["value"])
        if kind == "runtime_data":
            return Param(int(operand["value"]))
        if kind in ("hexstr", "int", "bool"):
            return _value_of(operand)
        raise IrError(f"Unsupported primitive operand {operand!r}")

    if op == "assign":
        destination = arg(0)
        try:
            return ActionPrimitive(
                "set_field", (str(destination), arg(1))
            )
        except IrError:
            # Source expression we cannot evaluate: keep the cost.
            return ActionPrimitive("no_op", ())
    if op in ("mark_to_drop", "drop"):
        return ActionPrimitive("drop", ())
    if op == "count":
        return ActionPrimitive("no_op", ())
    # Registers, hashes, clones, ...: cost-equivalent placeholder.
    return ActionPrimitive("no_op", ())


def _convert_action(raw: Mapping[str, Any]) -> Action:
    primitives = tuple(
        _convert_primitive(p) for p in raw.get("primitives", [])
    )
    return Action(str(raw["name"]), primitives)


def _convert_condition(expression: Mapping[str, Any]) -> Condition:
    """Support `field <relop> const` (either operand order) and
    validity checks (`d2b(field)`)."""
    node = expression
    while node.get("type") == "expression":
        node = node["value"]
    op = node.get("op")
    if op == "d2b":
        inner = node.get("left") or node.get("right")
        if inner and inner.get("type") == "field":
            return Condition(_field_name(inner["value"]), "valid")
        raise IrError(f"Unsupported d2b expression {node!r}")
    if op not in _RELATIONAL_OPS:
        raise IrError(f"Unsupported conditional op {op!r}")
    left, right = node.get("left"), node.get("right")
    if left and left.get("type") == "field":
        return Condition(
            _field_name(left["value"]),
            _RELATIONAL_OPS[op],
            _value_of(right),
        )
    if right and right.get("type") == "field":
        flipped = {
            "lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
            "eq": "eq", "ne": "ne",
        }
        return Condition(
            _field_name(right["value"]),
            flipped[_RELATIONAL_OPS[op]],
            _value_of(left),
        )
    raise IrError(
        f"Conditional without a field operand: {node!r}"
    )


def from_bmv2_json(
    data: Mapping[str, Any], pipeline_name: Optional[str] = None
) -> Program:
    """Convert one BMv2 pipeline (default: the first, i.e. ingress)."""
    pipelines = data.get("pipelines") or []
    if not pipelines:
        raise IrError("BMv2 JSON has no pipelines")
    if pipeline_name is None:
        pipeline = pipelines[0]
    else:
        matches = [
            p for p in pipelines if p.get("name") == pipeline_name
        ]
        if not matches:
            raise IrError(
                f"No pipeline named {pipeline_name!r}; available: "
                f"{[p.get('name') for p in pipelines]}"
            )
        pipeline = matches[0]

    actions_by_id: dict[int, Action] = {}
    actions_by_name: dict[str, Action] = {}
    for raw in data.get("actions", []):
        action = _convert_action(raw)
        actions_by_id[int(raw["id"])] = action
        # Later duplicates (same name, different id) share the name.
        actions_by_name.setdefault(action.name, action)

    program = Program(
        name=str(data.get("program", pipeline.get("name", "bmv2")))
    )

    for raw in pipeline.get("tables", []):
        keys = tuple(
            MatchKey(
                _field_name(k["target"]),
                _MATCH_TYPES.get(
                    str(k.get("match_type", "exact")),
                    MatchType.EXACT,
                ),
            )
            for k in raw.get("key", [])
        )
        table_actions: dict[str, Action] = {}
        for action_name in raw.get("actions", []):
            action = actions_by_name.get(str(action_name))
            if action is None:
                action = Action(str(action_name))
            table_actions[action.name] = action
        default = raw.get("default_entry", {})
        default_name: Optional[str] = None
        if "action_id" in default:
            default_action = actions_by_id.get(
                int(default["action_id"])
            )
            if default_action is not None:
                default_name = default_action.name
        if default_name is None or default_name not in table_actions:
            default_name = next(iter(table_actions))
        program.add(
            TableNode(
                name=str(raw["name"]),
                keys=keys,
                actions=table_actions,
                default_action=default_name,
                next_map={
                    str(a): nxt
                    for a, nxt in raw.get("next_tables", {}).items()
                    if str(a) in table_actions
                },
                size=int(raw.get("max_size", 1024)),
            )
        )

    for raw in pipeline.get("conditionals", []):
        program.add(
            ConditionalNode(
                name=str(raw["name"]),
                condition=_convert_condition(raw["expression"]),
                true_next=raw.get("true_next"),
                false_next=raw.get("false_next"),
            )
        )

    program.root = pipeline.get("init_table")
    if program.root is None and program.nodes:
        program.root = next(iter(program.nodes))
    from repro.ir.validate import validate_program

    validate_program(program)
    return program


def load_bmv2(fp: IO[str], pipeline_name: Optional[str] = None) -> Program:
    return from_bmv2_json(json.load(fp), pipeline_name)


def loads_bmv2(
    text: str, pipeline_name: Optional[str] = None
) -> Program:
    return from_bmv2_json(json.loads(text), pipeline_name)


def looks_like_bmv2(data: Mapping[str, Any]) -> bool:
    """Heuristic: p4c output has `pipelines`; our format has `nodes`."""
    return "pipelines" in data and "nodes" not in data
