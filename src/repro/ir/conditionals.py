"""Conditional-branch nodes and their small expression language."""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import IrError
from repro.ir.tables import Pipeline

_OPS: dict[str, Callable[[int, int], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


@dataclass(frozen=True)
class Condition:
    """A simple ``field <op> value`` predicate.

    ``op`` may also be ``"valid"``: true iff the field is present on the
    packet (models P4 header validity checks); ``value`` is ignored.
    """

    field: str
    op: str
    value: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS and self.op != "valid":
            raise IrError(f"Unknown condition op {self.op!r}")

    def evaluate(self, get_field: Callable[[str], Optional[int]]) -> bool:
        """Evaluate against an accessor returning None for absent fields."""
        packet_value = get_field(self.field)
        if self.op == "valid":
            return packet_value is not None
        if packet_value is None:
            return False
        return _OPS[self.op](packet_value, self.value)

    def read_fields(self) -> set[str]:
        return {self.field}


@dataclass
class ConditionalNode:
    """An if/else branch in the program DAG."""

    name: str
    condition: Condition
    true_next: Optional[str]
    false_next: Optional[str]
    pipeline: Pipeline = Pipeline.ASIC
    annotations: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise IrError("Conditional name must be non-empty")

    def successors(self) -> list[Optional[str]]:
        seen: list[Optional[str]] = []
        for nxt in (self.true_next, self.false_next):
            if nxt not in seen:
                seen.append(nxt)
        return seen

    def read_fields(self) -> set[str]:
        return self.condition.read_fields()

    def written_fields(self) -> set[str]:
        return set()

    def clone(self, **overrides: Any) -> "ConditionalNode":
        data = {
            "name": self.name,
            "condition": self.condition,
            "true_next": self.true_next,
            "false_next": self.false_next,
            "pipeline": self.pipeline,
            "annotations": dict(self.annotations),
        }
        data.update(overrides)
        return ConditionalNode(**data)
