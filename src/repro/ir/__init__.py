"""P4 graph IR: the program representation Pipeleon analyses and rewrites."""

from repro.ir.actions import (
    Action,
    ActionPrimitive,
    Param,
    drop_action,
    forward_action,
    noop_action,
    prim,
    set_field_action,
)
from repro.ir.bmv2 import (
    from_bmv2_json,
    load_bmv2,
    loads_bmv2,
    looks_like_bmv2,
)
from repro.ir.builder import ProgramBuilder, linear_program
from repro.ir.conditionals import Condition, ConditionalNode
from repro.ir.dependency import (
    can_swap,
    dependency_graph,
    depends_on,
    movable_to_front,
    order_is_valid,
    valid_orders,
)
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    RangeValue,
    TableEntry,
    TernaryValue,
    WILDCARD,
    exact_entry,
)
from repro.ir.json_io import (
    dump_program,
    dumps_program,
    entry_from_json,
    entry_to_json,
    load_program,
    loads_program,
    program_from_json,
    program_to_json,
)
from repro.ir.program import Node, Program
from repro.ir.tables import (
    CacheInfo,
    MatchKey,
    MatchType,
    Pipeline,
    TableKind,
    TableNode,
)
from repro.ir.validate import validate_program

__all__ = [
    "Action",
    "ActionPrimitive",
    "CacheInfo",
    "Condition",
    "ConditionalNode",
    "ExactValue",
    "LpmValue",
    "MatchKey",
    "MatchType",
    "Node",
    "Param",
    "Pipeline",
    "Program",
    "ProgramBuilder",
    "RangeValue",
    "TableEntry",
    "TableKind",
    "TableNode",
    "TernaryValue",
    "WILDCARD",
    "can_swap",
    "dependency_graph",
    "depends_on",
    "drop_action",
    "dump_program",
    "dumps_program",
    "entry_from_json",
    "entry_to_json",
    "exact_entry",
    "forward_action",
    "from_bmv2_json",
    "linear_program",
    "load_bmv2",
    "load_program",
    "loads_bmv2",
    "looks_like_bmv2",
    "loads_program",
    "movable_to_front",
    "noop_action",
    "order_is_valid",
    "prim",
    "program_from_json",
    "program_to_json",
    "set_field_action",
    "valid_orders",
    "validate_program",
]
