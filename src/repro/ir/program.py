"""The program DAG: the unit that Pipeleon analyses and transforms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Union

from repro.errors import IrError
from repro.ir.conditionals import ConditionalNode
from repro.ir.tables import Pipeline, TableKind, TableNode

Node = Union[TableNode, ConditionalNode]


@dataclass
class Program:
    """A P4 program as a DAG of tables and conditionals.

    Nodes reference each other by name through their ``next`` links;
    ``None`` means "end of pipeline" (the sink). Entries are *not* stored
    here — they live in the control plane — which lets transformations
    clone and rewrite programs cheaply.
    """

    name: str = "program"
    nodes: dict[str, Node] = field(default_factory=dict)
    root: Optional[str] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise IrError(f"Duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        if self.root is None:
            self.root = node.name
        return node

    def remove(self, name: str) -> Node:
        if name not in self.nodes:
            raise IrError(f"No such node {name!r}")
        node = self.nodes.pop(name)
        if self.root == name:
            self.root = None
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise IrError(
                f"Program {self.name!r} has no node {name!r}"
            ) from None

    def table(self, name: str) -> TableNode:
        node = self.node(name)
        if not isinstance(node, TableNode):
            raise IrError(f"Node {name!r} is not a table")
        return node

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- structure queries ---------------------------------------------------

    def tables(self) -> list[TableNode]:
        return [n for n in self.nodes.values() if isinstance(n, TableNode)]

    def plain_tables(self) -> list[TableNode]:
        return [t for t in self.tables() if t.kind is TableKind.PLAIN]

    def conditionals(self) -> list[ConditionalNode]:
        return [
            n for n in self.nodes.values()
            if isinstance(n, ConditionalNode)
        ]

    def successors(self, name: str) -> list[str]:
        return [s for s in self.node(name).successors() if s is not None]

    def predecessors(self, name: str) -> list[str]:
        preds = []
        for other in self.nodes.values():
            if name in other.successors():
                preds.append(other.name)
        return preds

    def edges(self) -> Iterator[tuple[str, Optional[str], str]]:
        """Yield ``(src, dst, label)`` for every edge.

        Labels are action names for tables, ``"true"``/``"false"`` for
        conditionals; ``dst`` is None for edges into the sink.
        """
        for node in self.nodes.values():
            if isinstance(node, TableNode):
                for action_name, nxt in node.next_map.items():
                    yield node.name, nxt, action_name
            else:
                yield node.name, node.true_next, "true"
                yield node.name, node.false_next, "false"

    def reachable(self, start: Optional[str] = None) -> set[str]:
        start = start if start is not None else self.root
        if start is None:
            return set()
        seen: set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.nodes:
                continue
            seen.add(current)
            stack.extend(self.successors(current))
        return seen

    def topological_order(self) -> list[str]:
        """Names of reachable nodes in topological order.

        Raises :class:`IrError` if the reachable subgraph has a cycle.
        """
        reachable = self.reachable()
        indegree = {name: 0 for name in reachable}
        for name in reachable:
            for succ in self.successors(name):
                if succ in indegree:
                    indegree[succ] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in self.successors(current):
                if succ not in indegree:
                    continue
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    # Insert keeping deterministic (sorted) tie-breaking.
                    ready.append(succ)
                    ready.sort()
        if len(order) != len(reachable):
            raise IrError(
                f"Program {self.name!r} contains a cycle among "
                f"{sorted(reachable - set(order))}"
            )
        return order

    def paths(self, limit: int = 100000) -> list[list[str]]:
        """All root->sink execution paths (node-name sequences).

        Exponential in branching depth; used by tests and small-program
        analyses. ``limit`` guards against blow-ups.
        """
        if self.root is None:
            return []
        results: list[list[str]] = []
        stack: list[tuple[str, list[str]]] = [(self.root, [])]
        while stack:
            current, prefix = stack.pop()
            path = prefix + [current]
            successors = self.successors(current)
            node = self.node(current)
            # A node is a sink hop if any next is None.
            if None in [
                s for s in node.successors()
            ] or not successors:
                results.append(path)
                if len(results) > limit:
                    raise IrError("Path enumeration exceeded limit")
            for succ in successors:
                stack.append((succ, path))
        return results

    # -- rewriting ------------------------------------------------------------

    def replace_next(self, old: Optional[str], new: Optional[str]) -> int:
        """Rewire every edge pointing at ``old`` to point at ``new``."""
        count = 0
        for node in self.nodes.values():
            if isinstance(node, TableNode):
                for action_name, nxt in node.next_map.items():
                    if nxt == old:
                        node.next_map[action_name] = new
                        count += 1
                if node.cache_info is not None:
                    if node.cache_info.hit_next == old:
                        node.cache_info.hit_next = new
                        count += 1
                    if node.cache_info.miss_next == old:
                        node.cache_info.miss_next = new
                        count += 1
            else:
                if node.true_next == old:
                    node.true_next = new
                    count += 1
                if node.false_next == old:
                    node.false_next = new
                    count += 1
        if self.root == old:
            self.root = new
            count += 1
        return count

    def clone(self, name: Optional[str] = None) -> "Program":
        cloned = Program(
            name=name or self.name,
            root=self.root,
            metadata=dict(self.metadata),
        )
        for node in self.nodes.values():
            cloned.nodes[node.name] = node.clone()
        return cloned

    def prune_unreachable(self) -> list[str]:
        """Drop nodes unreachable from the root; return their names."""
        keep = self.reachable()
        removed = [n for n in self.nodes if n not in keep]
        for name in removed:
            del self.nodes[name]
        return removed

    # -- pipeline assignment (§3.2.4) ----------------------------------------

    def assign_pipeline(self, names: Iterable[str], pipeline: Pipeline) -> None:
        for name in names:
            self.node(name).pipeline = pipeline

    def pipelines_used(self) -> set[Pipeline]:
        return {n.pipeline for n in self.nodes.values()}

    @property
    def is_heterogeneous(self) -> bool:
        return len(self.pipelines_used()) > 1

    def summary(self) -> str:
        """Human-readable one-line-per-node dump (debugging aid)."""
        lines = [f"Program {self.name!r} root={self.root!r}"]
        for name in self.topological_order():
            node = self.node(name)
            if isinstance(node, TableNode):
                nexts = ", ".join(
                    f"{a}->{n}" for a, n in sorted(node.next_map.items())
                )
                lines.append(
                    f"  table {name} [{node.kind.value}/"
                    f"{node.pipeline.value}] keys="
                    f"{[k.field for k in node.keys]} next=({nexts})"
                )
            else:
                lines.append(
                    f"  if {name} ({node.condition.field} "
                    f"{node.condition.op} {node.condition.value}) "
                    f"T->{node.true_next} F->{node.false_next}"
                )
        return "\n".join(lines)
