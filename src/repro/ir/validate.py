"""Structural validation of program DAGs."""

from __future__ import annotations

from repro.errors import ValidationError
from repro.ir.program import Program
from repro.ir.tables import TableKind, TableNode


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` listing every structural problem."""
    problems: list[str] = []

    if program.root is None:
        problems.append("program has no root")
    elif program.root not in program.nodes:
        problems.append(f"root {program.root!r} is not a node")

    for node in program.nodes.values():
        for succ in node.successors():
            if succ is not None and succ not in program.nodes:
                problems.append(
                    f"node {node.name!r} points at missing node {succ!r}"
                )
        if isinstance(node, TableNode):
            problems.extend(_check_table(program, node))

    if not problems:
        # Cycle check only makes sense on a structurally sound graph.
        try:
            program.topological_order()
        except Exception as exc:  # IrError carries the cycle info
            problems.append(str(exc))

    if problems:
        raise ValidationError(problems)


def _check_table(program: Program, table: TableNode) -> list[str]:
    problems: list[str] = []
    keyless_kinds = (TableKind.NAVIGATION, TableKind.MIGRATION)
    if not table.keys and table.kind not in keyless_kinds:
        problems.append(f"table {table.name!r} has no match keys")
    if table.kind in (TableKind.CACHE, TableKind.MERGED):
        info = table.cache_info
        if info is None:
            if table.kind is TableKind.CACHE:
                problems.append(
                    f"cache table {table.name!r} lacks cache_info"
                )
            return problems
        for covered in info.covers:
            if covered not in program.nodes:
                problems.append(
                    f"cache table {table.name!r} covers missing table "
                    f"{covered!r}"
                )
        if info.miss_next not in program.nodes:
            problems.append(
                f"cache table {table.name!r} miss_next "
                f"{info.miss_next!r} missing"
            )
        if info.hit_next is not None and info.hit_next not in program.nodes:
            problems.append(
                f"cache table {table.name!r} hit_next "
                f"{info.hit_next!r} missing"
            )
    return problems
