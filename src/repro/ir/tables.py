"""Match-action table nodes of the P4 graph IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.errors import IrError
from repro.ir.actions import Action


class MatchType(str, Enum):
    """P4 match kinds supported by the IR (and the cost model)."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"


class Pipeline(str, Enum):
    """Which SmartNIC core pool a node is assigned to (§3.2.4)."""

    ASIC = "asic"
    CPU = "cpu"


class MemoryTier(str, Enum):
    """Memory hierarchy level a table's entries live in (§6).

    The paper's "hierarchical memory support" future work: NICs like
    Agilio CX offer internal SRAM (IMEM) and local cluster memory
    (LMEM) that are much faster than the external DRAM (EMEM) all P4
    tables default to. The extension lets the optimizer place hot
    tables into faster tiers under a fast-memory budget.
    """

    EMEM = "emem"  # external memory (default; slowest, largest)
    IMEM = "imem"  # internal SRAM
    LMEM = "lmem"  # local/cluster memory (fastest, smallest)


class TableKind(str, Enum):
    """Role of a table node; transformations introduce the special kinds."""

    PLAIN = "table"
    CACHE = "cache"  # flow cache inserted by table caching (§3.2.2)
    MERGED = "merged"  # merged table from table merging (§3.2.3)
    NAVIGATION = "navigation"  # jump-to-next_tab_id table (§3.2.4)
    MIGRATION = "migration"  # records next_tab_id before migration


@dataclass(frozen=True)
class MatchKey:
    """One match key: a field name plus its match type."""

    field: str
    match_type: MatchType = MatchType.EXACT

    def __post_init__(self) -> None:
        if not self.field:
            raise IrError("MatchKey field must be non-empty")
        if not isinstance(self.match_type, MatchType):
            object.__setattr__(
                self, "match_type", MatchType(self.match_type)
            )


@dataclass
class CacheInfo:
    """Extra semantics attached to CACHE / MERGED tables.

    ``covers``
        Names of the original tables whose combined behaviour this table
        short-circuits, in execution order.
    ``hit_next``
        Node the packet jumps to on a hit (the node right after the
        covered run); ``None`` means end of pipeline.
    ``miss_next``
        First covered table; packets fall back there on a miss.
    ``mode``
        ``"flow"`` for runtime-populated flow caches (insert on miss),
        ``"merge"`` for merge-produced exact caches (pre-populated from
        the cross product of the covered tables' entries; never inserts
        at runtime).
    """

    covers: tuple[str, ...]
    hit_next: Optional[str]
    miss_next: str
    mode: str = "flow"
    capacity: int = 4096
    insertion_limit_pps: float = 10000.0
    estimated_hit_rate: float = 0.9

    def __post_init__(self) -> None:
        if self.mode not in ("flow", "merge"):
            raise IrError(f"Unknown cache mode {self.mode!r}")
        if not self.covers:
            raise IrError("CacheInfo.covers must be non-empty")
        self.covers = tuple(self.covers)


@dataclass
class TableNode:
    """A match-action table in the program DAG.

    ``next_map`` maps each action name to the next node (or ``None`` for
    the end of the pipeline). A table whose actions lead to *different*
    next nodes is a "switch-case table" in the paper's terminology and
    forms its own pipelet.
    """

    name: str
    keys: tuple[MatchKey, ...]
    actions: dict[str, Action]
    default_action: str
    next_map: dict[str, Optional[str]]
    size: int = 1024
    kind: TableKind = TableKind.PLAIN
    pipeline: Pipeline = Pipeline.ASIC
    memory_tier: MemoryTier = MemoryTier.EMEM
    cache_info: Optional[CacheInfo] = None
    annotations: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.keys = tuple(self.keys)
        if not self.name:
            raise IrError("Table name must be non-empty")
        if self.default_action not in self.actions:
            raise IrError(
                f"Table {self.name}: default action "
                f"{self.default_action!r} not among actions"
            )
        for action_name in self.next_map:
            if action_name not in self.actions:
                raise IrError(
                    f"Table {self.name}: next_map references unknown "
                    f"action {action_name!r}"
                )
        for action_name in self.actions:
            self.next_map.setdefault(action_name, None)
        if self.kind in (TableKind.CACHE, TableKind.MERGED):
            if self.cache_info is None and self.kind is TableKind.CACHE:
                raise IrError(
                    f"Table {self.name}: CACHE kind requires cache_info"
                )

    # -- structure ---------------------------------------------------------

    @property
    def is_switch_case(self) -> bool:
        """True if different actions lead to different next nodes."""
        return len(set(self.next_map.values())) > 1

    def successors(self) -> list[Optional[str]]:
        """Distinct next nodes in deterministic order."""
        seen: list[Optional[str]] = []
        for nxt in self.next_map.values():
            if nxt not in seen:
                seen.append(nxt)
        return seen

    def next_for(self, action_name: str) -> Optional[str]:
        if action_name not in self.next_map:
            raise IrError(
                f"Table {self.name}: unknown action {action_name!r}"
            )
        return self.next_map[action_name]

    @property
    def match_fields(self) -> tuple[str, ...]:
        return tuple(k.field for k in self.keys)

    @property
    def match_types(self) -> tuple[MatchType, ...]:
        return tuple(k.match_type for k in self.keys)

    @property
    def worst_match_type(self) -> MatchType:
        """The costliest match type among the keys (cost model input)."""
        order = [
            MatchType.RANGE,
            MatchType.TERNARY,
            MatchType.LPM,
            MatchType.EXACT,
        ]
        for match_type in order:
            if match_type in self.match_types:
                return match_type
        return MatchType.EXACT

    # -- dependency sets (see ir.dependency) -------------------------------

    def read_fields(self) -> set[str]:
        fields = set(self.match_fields)
        for action in self.actions.values():
            fields.update(action.read_fields())
        return fields

    def written_fields(self) -> set[str]:
        fields: set[str] = set()
        for action in self.actions.values():
            fields.update(action.written_fields())
        return fields

    @property
    def can_drop(self) -> bool:
        return any(a.drops for a in self.actions.values())

    # -- copying -----------------------------------------------------------

    def clone(self, **overrides: Any) -> "TableNode":
        """Copy the node (cache_info deep-copied: rewiring mutates it)."""
        cache_info = self.cache_info
        if cache_info is not None and "cache_info" not in overrides:
            cache_info = CacheInfo(
                covers=cache_info.covers,
                hit_next=cache_info.hit_next,
                miss_next=cache_info.miss_next,
                mode=cache_info.mode,
                capacity=cache_info.capacity,
                insertion_limit_pps=cache_info.insertion_limit_pps,
                estimated_hit_rate=cache_info.estimated_hit_rate,
            )
        overrides.setdefault("cache_info", cache_info)
        data = {
            "name": self.name,
            "keys": self.keys,
            "actions": dict(self.actions),
            "default_action": self.default_action,
            "next_map": dict(self.next_map),
            "size": self.size,
            "kind": self.kind,
            "pipeline": self.pipeline,
            "memory_tier": self.memory_tier,
            "cache_info": self.cache_info,
            "annotations": dict(self.annotations),
        }
        data.update(overrides)
        return TableNode(**data)
