"""Actions and action primitives of the P4 graph IR.

An :class:`Action` is a named sequence of :class:`ActionPrimitive` steps.
Primitives are tiny interpreted operations (set a field, add to a field,
drop, forward, ...) whose *count* is what the paper's cost model charges
(``n_a`` primitives, each costing ``Lact``).

Entry-supplied runtime arguments ("action data" in P4 speak) are referenced
from primitives through :class:`Param` placeholders, bound at execution time
by the NIC emulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import IrError

#: Known primitive operations mapped to their expected argument count.
PRIMITIVE_OPS: dict[str, int] = {
    "set_field": 2,  # (field, value) -- write a header/metadata field
    "add_to_field": 2,  # (field, delta)
    "copy_field": 2,  # (dst_field, src_field)
    "set_meta": 2,  # (meta_key, value) -- alias of set_field on metadata
    "forward": 1,  # (egress_port)
    "drop": 0,  # halt processing, discard packet
    "no_op": 0,  # costs one primitive, does nothing (padding workloads)
    "count": 1,  # (counter_name) explicit counter bump
}

#: Sentinel fields used by dependency analysis for fate-deciding primitives.
DROP_FIELD = "__drop__"
PORT_FIELD = "__egress_port__"


@dataclass(frozen=True)
class Param:
    """Placeholder for the i-th runtime action-data argument of an entry."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise IrError(f"Param index must be >= 0, got {self.index}")

    def __repr__(self) -> str:  # compact in dumps of big programs
        return f"Param({self.index})"


@dataclass(frozen=True)
class ActionPrimitive:
    """One interpreted step of an action, e.g. ``set_field(ipv4.ttl, 64)``."""

    op: str
    args: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in PRIMITIVE_OPS:
            raise IrError(f"Unknown primitive op {self.op!r}")
        expected = PRIMITIVE_OPS[self.op]
        if len(self.args) != expected:
            raise IrError(
                f"Primitive {self.op!r} expects {expected} args, "
                f"got {len(self.args)}"
            )

    @property
    def writes_field(self) -> str | None:
        """The field this primitive writes, if any (dependency analysis)."""
        if self.op in ("set_field", "add_to_field", "set_meta"):
            return str(self.args[0])
        if self.op == "copy_field":
            return str(self.args[0])
        if self.op == "drop":
            return DROP_FIELD
        if self.op == "forward":
            return PORT_FIELD
        return None

    @property
    def reads_fields(self) -> tuple[str, ...]:
        """Fields this primitive reads (dependency analysis)."""
        if self.op == "add_to_field":
            return (str(self.args[0]),)
        if self.op == "copy_field":
            return (str(self.args[1]),)
        return ()


@dataclass(frozen=True)
class Action:
    """A named action: an ordered tuple of primitives."""

    name: str
    primitives: tuple[ActionPrimitive, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise IrError("Action name must be non-empty")
        object.__setattr__(self, "primitives", tuple(self.primitives))

    @property
    def primitive_count(self) -> int:
        """``n_a`` in the paper's cost model (Equation 4b)."""
        return len(self.primitives)

    @property
    def drops(self) -> bool:
        """True if executing this action discards the packet."""
        return any(p.op == "drop" for p in self.primitives)

    def written_fields(self) -> set[str]:
        return {
            w for p in self.primitives if (w := p.writes_field) is not None
        }

    def read_fields(self) -> set[str]:
        fields: set[str] = set()
        for primitive in self.primitives:
            fields.update(primitive.reads_fields)
        return fields


# ---------------------------------------------------------------------------
# Convenience constructors used throughout apps, synthesis and tests.
# ---------------------------------------------------------------------------


def prim(op: str, *args: Any) -> ActionPrimitive:
    """Shorthand primitive constructor."""
    return ActionPrimitive(op, tuple(args))


def drop_action(name: str = "drop") -> Action:
    """An action that discards the packet."""
    return Action(name, (prim("drop"),))


def forward_action(port: int | Param, name: str = "forward") -> Action:
    """An action that sets the egress port."""
    return Action(name, (prim("forward", port),))


def noop_action(name: str = "nop", n_primitives: int = 1) -> Action:
    """An action of ``n_primitives`` no-ops (controls action complexity)."""
    return Action(name, tuple(prim("no_op") for _ in range(n_primitives)))


def set_field_action(
    name: str, assignments: dict[str, Any] | None = None
) -> Action:
    """An action assigning constant/Param values to fields."""
    assignments = assignments or {}
    return Action(
        name,
        tuple(prim("set_field", f, v) for f, v in assignments.items()),
    )
