"""Table entries and match value types.

Entries are *runtime* state (they live in the control plane), but their
value types are part of the IR because optimizations such as table merging
manipulate them symbolically (Figure 6 in the paper).

All values are integers; IPv4 addresses are 32-bit ints, ports 16-bit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Union

from repro.errors import IrError

FULL_MASK_32 = 0xFFFFFFFF

#: Assumed storage width of one match field, used for memory accounting.
FIELD_BYTES = 4
#: Assumed overhead per entry (action id, pointers) for memory accounting.
ENTRY_OVERHEAD_BYTES = 8


@dataclass(frozen=True)
class ExactValue:
    """Exact match on a single value."""

    value: int

    def matches(self, packet_value: int) -> bool:
        return packet_value == self.value

    def as_ternary(self, width_bits: int = 32) -> "TernaryValue":
        return TernaryValue(self.value, (1 << width_bits) - 1)


@dataclass(frozen=True)
class LpmValue:
    """Longest-prefix match value: ``value / prefix_len`` (width 32)."""

    value: int
    prefix_len: int
    width_bits: int = 32

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= self.width_bits:
            raise IrError(
                f"prefix_len {self.prefix_len} out of range "
                f"[0, {self.width_bits}]"
            )

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return ((1 << self.prefix_len) - 1) << (
            self.width_bits - self.prefix_len
        )

    def matches(self, packet_value: int) -> bool:
        return (packet_value & self.mask) == (self.value & self.mask)

    def as_ternary(self, width_bits: int = 32) -> "TernaryValue":
        return TernaryValue(self.value & self.mask, self.mask)


@dataclass(frozen=True)
class TernaryValue:
    """Ternary match: ``value & mask`` must equal ``packet & mask``."""

    value: int
    mask: int

    def matches(self, packet_value: int) -> bool:
        return (packet_value & self.mask) == (self.value & self.mask)

    def as_ternary(self, width_bits: int = 32) -> "TernaryValue":
        return self

    @property
    def is_wildcard(self) -> bool:
        return self.mask == 0


@dataclass(frozen=True)
class RangeValue:
    """Inclusive range match ``lo <= packet_value <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise IrError(f"Range lo {self.lo} > hi {self.hi}")

    def matches(self, packet_value: int) -> bool:
        return self.lo <= packet_value <= self.hi


MatchValue = Union[ExactValue, LpmValue, TernaryValue, RangeValue]

#: Wildcard ternary value (matches anything), used by merged tables.
WILDCARD = TernaryValue(0, 0)

_entry_counter = itertools.count(1)


@dataclass
class TableEntry:
    """One installed match-action entry.

    ``priority`` breaks ternary/range overlaps: *higher wins* (the paper's
    Figure 6 uses the same convention).
    """

    match_values: tuple[MatchValue, ...]
    action_name: str
    action_data: tuple[Any, ...] = ()
    priority: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_counter))

    def __post_init__(self) -> None:
        self.match_values = tuple(self.match_values)
        self.action_data = tuple(self.action_data)

    def matches(self, packet_values: tuple[int, ...]) -> bool:
        """Linear-scan oracle used to validate the fast match engines."""
        if len(packet_values) != len(self.match_values):
            return False
        return all(
            mv.matches(pv)
            for mv, pv in zip(self.match_values, packet_values)
        )

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint (memory-budget accounting)."""
        return ENTRY_OVERHEAD_BYTES + FIELD_BYTES * len(self.match_values)

    def clone(self) -> "TableEntry":
        """Copy with a fresh entry id (for installing into another table)."""
        return TableEntry(
            match_values=self.match_values,
            action_name=self.action_name,
            action_data=self.action_data,
            priority=self.priority,
        )


def exact_entry(
    values: tuple[int, ...] | int,
    action_name: str,
    action_data: tuple[Any, ...] = (),
) -> TableEntry:
    """Build an all-exact entry from raw ints."""
    if isinstance(values, int):
        values = (values,)
    return TableEntry(
        tuple(ExactValue(v) for v in values), action_name, action_data
    )


def distinct_masks(entries: list[TableEntry]) -> int:
    """Number of distinct mask combinations among ternary entries.

    The paper models a ternary table as multiple hash tables, one per
    distinct mask; the lookup cost ``m`` equals this count (>= 1).
    """
    masks = set()
    for entry in entries:
        combo = tuple(
            v.mask if isinstance(v, (TernaryValue, LpmValue)) else None
            for v in entry.match_values
        )
        masks.add(combo)
    return max(1, len(masks))


def distinct_prefix_lengths(entries: list[TableEntry]) -> int:
    """Number of distinct prefix-length combinations among LPM entries."""
    lengths = set()
    for entry in entries:
        combo = tuple(
            v.prefix_len if isinstance(v, LpmValue) else None
            for v in entry.match_values
        )
        lengths.add(combo)
    return max(1, len(lengths))
