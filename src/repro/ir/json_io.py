"""BMv2-style JSON serialization of programs.

Pipeleon is a source-to-source optimizer: it consumes the intermediate
``.json`` produced by the P4 compiler and emits an optimized ``.json`` for
the vendor toolchain (§5.1). This module defines that interchange format
for the reproduction: a faithful subset of the BMv2 JSON shape (pipelines
of tables with per-action ``next_tables``, plus conditionals), extended
with Pipeleon's cache/merge metadata.
"""

from __future__ import annotations

import json
from typing import Any, IO, Optional

from repro.errors import IrError
from repro.ir.actions import Action, ActionPrimitive, Param
from repro.ir.conditionals import Condition, ConditionalNode
from repro.ir.entries import (
    ExactValue,
    LpmValue,
    MatchValue,
    RangeValue,
    TableEntry,
    TernaryValue,
)
from repro.ir.program import Program
from repro.ir.tables import (
    CacheInfo,
    MatchKey,
    MatchType,
    MemoryTier,
    Pipeline,
    TableKind,
    TableNode,
)

FORMAT_VERSION = 1


# -- arguments (Param placeholders) -----------------------------------------


def _arg_to_json(arg: Any) -> Any:
    if isinstance(arg, Param):
        return {"__param__": arg.index}
    return arg


def _arg_from_json(data: Any) -> Any:
    if isinstance(data, dict) and "__param__" in data:
        return Param(int(data["__param__"]))
    return data


# -- actions -----------------------------------------------------------------


def action_to_json(action: Action) -> dict[str, Any]:
    return {
        "name": action.name,
        "primitives": [
            {"op": p.op, "args": [_arg_to_json(a) for a in p.args]}
            for p in action.primitives
        ],
    }


def action_from_json(data: dict[str, Any]) -> Action:
    return Action(
        name=data["name"],
        primitives=tuple(
            ActionPrimitive(
                p["op"], tuple(_arg_from_json(a) for a in p.get("args", []))
            )
            for p in data.get("primitives", [])
        ),
    )


# -- nodes ---------------------------------------------------------------------


def _table_to_json(table: TableNode) -> dict[str, Any]:
    data: dict[str, Any] = {
        "type": "table",
        "name": table.name,
        "keys": [
            {"field": k.field, "match_type": k.match_type.value}
            for k in table.keys
        ],
        "actions": [action_to_json(a) for a in table.actions.values()],
        "default_action": table.default_action,
        "next_tables": dict(table.next_map),
        "size": table.size,
        "kind": table.kind.value,
        "pipeline": table.pipeline.value,
        "memory_tier": table.memory_tier.value,
        "annotations": dict(table.annotations),
    }
    if table.cache_info is not None:
        info = table.cache_info
        data["cache_info"] = {
            "covers": list(info.covers),
            "hit_next": info.hit_next,
            "miss_next": info.miss_next,
            "mode": info.mode,
            "capacity": info.capacity,
            "insertion_limit_pps": info.insertion_limit_pps,
            "estimated_hit_rate": info.estimated_hit_rate,
        }
    return data


def _table_from_json(data: dict[str, Any]) -> TableNode:
    cache_info = None
    if "cache_info" in data:
        raw = data["cache_info"]
        cache_info = CacheInfo(
            covers=tuple(raw["covers"]),
            hit_next=raw.get("hit_next"),
            miss_next=raw["miss_next"],
            mode=raw.get("mode", "flow"),
            capacity=int(raw.get("capacity", 4096)),
            insertion_limit_pps=float(
                raw.get("insertion_limit_pps", 10000.0)
            ),
            estimated_hit_rate=float(raw.get("estimated_hit_rate", 0.9)),
        )
    actions = [action_from_json(a) for a in data.get("actions", [])]
    return TableNode(
        name=data["name"],
        keys=tuple(
            MatchKey(k["field"], MatchType(k.get("match_type", "exact")))
            for k in data.get("keys", [])
        ),
        actions={a.name: a for a in actions},
        default_action=data["default_action"],
        next_map=dict(data.get("next_tables", {})),
        size=int(data.get("size", 1024)),
        kind=TableKind(data.get("kind", "table")),
        pipeline=Pipeline(data.get("pipeline", "asic")),
        memory_tier=MemoryTier(data.get("memory_tier", "emem")),
        cache_info=cache_info,
        annotations=dict(data.get("annotations", {})),
    )


def _conditional_to_json(node: ConditionalNode) -> dict[str, Any]:
    return {
        "type": "conditional",
        "name": node.name,
        "condition": {
            "field": node.condition.field,
            "op": node.condition.op,
            "value": node.condition.value,
        },
        "true_next": node.true_next,
        "false_next": node.false_next,
        "pipeline": node.pipeline.value,
        "annotations": dict(node.annotations),
    }


def _conditional_from_json(data: dict[str, Any]) -> ConditionalNode:
    cond = data["condition"]
    return ConditionalNode(
        name=data["name"],
        condition=Condition(
            cond["field"], cond["op"], int(cond.get("value", 0))
        ),
        true_next=data.get("true_next"),
        false_next=data.get("false_next"),
        pipeline=Pipeline(data.get("pipeline", "asic")),
        annotations=dict(data.get("annotations", {})),
    )


# -- program ---------------------------------------------------------------------


def program_to_json(program: Program) -> dict[str, Any]:
    nodes = []
    for name in sorted(program.nodes):
        node = program.nodes[name]
        if isinstance(node, TableNode):
            nodes.append(_table_to_json(node))
        else:
            nodes.append(_conditional_to_json(node))
    return {
        "format_version": FORMAT_VERSION,
        "program": program.name,
        "root": program.root,
        "metadata": dict(program.metadata),
        "nodes": nodes,
    }


def program_from_json(data: dict[str, Any]) -> Program:
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise IrError(f"Unsupported format version {version}")
    program = Program(
        name=data.get("program", "program"),
        metadata=dict(data.get("metadata", {})),
    )
    for node_data in data.get("nodes", []):
        node_type = node_data.get("type", "table")
        if node_type == "table":
            program.add(_table_from_json(node_data))
        elif node_type == "conditional":
            program.add(_conditional_from_json(node_data))
        else:
            raise IrError(f"Unknown node type {node_type!r}")
    program.root = data.get("root")
    return program


def dump_program(program: Program, fp: IO[str], indent: int = 2) -> None:
    json.dump(program_to_json(program), fp, indent=indent, sort_keys=True)


def dumps_program(program: Program, indent: Optional[int] = 2) -> str:
    return json.dumps(
        program_to_json(program), indent=indent, sort_keys=True
    )


def load_program(fp: IO[str]) -> Program:
    return program_from_json(json.load(fp))


def loads_program(text: str) -> Program:
    return program_from_json(json.loads(text))


# -- entries (control-plane snapshots) -------------------------------------------


def _value_to_json(value: MatchValue) -> dict[str, Any]:
    if isinstance(value, ExactValue):
        return {"kind": "exact", "value": value.value}
    if isinstance(value, LpmValue):
        return {
            "kind": "lpm",
            "value": value.value,
            "prefix_len": value.prefix_len,
            "width_bits": value.width_bits,
        }
    if isinstance(value, TernaryValue):
        return {"kind": "ternary", "value": value.value, "mask": value.mask}
    if isinstance(value, RangeValue):
        return {"kind": "range", "lo": value.lo, "hi": value.hi}
    raise IrError(f"Unknown match value type {type(value).__name__}")


def _value_from_json(data: dict[str, Any]) -> MatchValue:
    kind = data["kind"]
    if kind == "exact":
        return ExactValue(int(data["value"]))
    if kind == "lpm":
        return LpmValue(
            int(data["value"]),
            int(data["prefix_len"]),
            int(data.get("width_bits", 32)),
        )
    if kind == "ternary":
        return TernaryValue(int(data["value"]), int(data["mask"]))
    if kind == "range":
        return RangeValue(int(data["lo"]), int(data["hi"]))
    raise IrError(f"Unknown match value kind {kind!r}")


def entry_to_json(entry: TableEntry) -> dict[str, Any]:
    return {
        "match": [_value_to_json(v) for v in entry.match_values],
        "action": entry.action_name,
        "action_data": [_arg_to_json(a) for a in entry.action_data],
        "priority": entry.priority,
    }


def entry_from_json(data: dict[str, Any]) -> TableEntry:
    return TableEntry(
        match_values=tuple(
            _value_from_json(v) for v in data.get("match", [])
        ),
        action_name=data["action"],
        action_data=tuple(
            _arg_from_json(a) for a in data.get("action_data", [])
        ),
        priority=int(data.get("priority", 0)),
    )
