"""Table dependency analysis (reordering safety).

Two tables can be swapped only when doing so cannot change program
behaviour. We use classic read/write-set analysis with one domain-specific
relaxation from the paper: *drop* decisions commute. Two ACL tables that
may both drop a packet can be reordered freely (whichever drops first,
the packet's observable fate is identical), so the synthetic ``__drop__``
field is excluded from output-dependency checks.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator, Sequence

import networkx as nx

from repro.ir.actions import DROP_FIELD
from repro.ir.tables import TableNode


def depends_on(first: TableNode, second: TableNode) -> bool:
    """True if ``second`` must stay after ``first`` (cannot swap them).

    Checks true (RAW), anti (WAR) and output (WAW) dependencies over the
    tables' read/write field sets, ignoring commutative drop writes.
    """
    first_writes = first.written_fields() - {DROP_FIELD}
    second_writes = second.written_fields() - {DROP_FIELD}
    if first_writes & second.read_fields():
        return True  # true dependency
    if first.read_fields() & second_writes:
        return True  # anti dependency
    if first_writes & second_writes:
        return True  # output dependency
    return False


def can_swap(first: TableNode, second: TableNode) -> bool:
    """True if adjacent tables ``first -> second`` may be reordered."""
    return not depends_on(first, second) and not depends_on(second, first)


def dependency_graph(tables: Sequence[TableNode]) -> nx.DiGraph:
    """Build the must-precede DAG over a linear run of tables.

    An edge ``a -> b`` means ``a`` must execute before ``b``. Only pairs
    in their current relative order are considered (the current order is
    assumed correct).
    """
    graph = nx.DiGraph()
    for table in tables:
        graph.add_node(table.name)
    for i, first in enumerate(tables):
        for second in tables[i + 1:]:
            if depends_on(first, second) or depends_on(second, first):
                graph.add_edge(first.name, second.name)
    return graph


def order_is_valid(
    tables: Sequence[TableNode], order: Sequence[str]
) -> bool:
    """Check that ``order`` respects all pairwise dependencies."""
    graph = dependency_graph(tables)
    position = {name: i for i, name in enumerate(order)}
    if set(position) != set(graph.nodes):
        return False
    return all(
        position[a] < position[b] for a, b in graph.edges
    )


def valid_orders(
    tables: Sequence[TableNode], limit: int = 64
) -> Iterator[tuple[str, ...]]:
    """Yield dependency-respecting orders (up to ``limit``).

    For short runs this enumerates all topological orders; the identity
    order is always yielded first so callers can treat index 0 as the
    no-op candidate.
    """
    names = [t.name for t in tables]
    graph = dependency_graph(tables)
    yield tuple(names)
    count = 1
    if len(tables) <= 7:
        seen = {tuple(names)}
        for perm in permutations(names):
            if perm in seen:
                continue
            position = {name: i for i, name in enumerate(perm)}
            if all(position[a] < position[b] for a, b in graph.edges):
                seen.add(perm)
                yield perm
                count += 1
                if count >= limit:
                    return
    else:
        # Long runs: enumerating permutations is hopeless; fall back to
        # networkx topological-sort sampling (deterministic subset).
        for perm in nx.all_topological_sorts(graph):
            tpl = tuple(perm)
            if tpl == tuple(names):
                continue
            yield tpl
            count += 1
            if count >= limit:
                return


def movable_to_front(
    tables: Sequence[TableNode], target: str
) -> tuple[str, ...] | None:
    """The order obtained by hoisting ``target`` as early as allowed.

    Returns None when the table cannot move at all. This is the greedy
    primitive behind drop-rate-driven reordering.
    """
    names = [t.name for t in tables]
    if target not in names:
        return None
    by_name = {t.name: t for t in tables}
    index = names.index(target)
    position = index
    while position > 0 and can_swap(
        by_name[names[position - 1]], by_name[target]
    ):
        position -= 1
    if position == index:
        return None
    names.pop(index)
    names.insert(position, target)
    return tuple(names)
