"""Fluent construction of program DAGs.

The builder keeps app code (``repro.apps``) and tests short: it resolves
string shorthands for match types, default actions and linear chains.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from repro.errors import IrError
from repro.ir.actions import Action, drop_action, noop_action
from repro.ir.conditionals import Condition, ConditionalNode
from repro.ir.program import Program
from repro.ir.tables import (
    CacheInfo,
    MatchKey,
    MatchType,
    Pipeline,
    TableKind,
    TableNode,
)

KeySpec = Union[MatchKey, str, tuple[str, str], tuple[str, MatchType]]


def _coerce_key(spec: KeySpec) -> MatchKey:
    if isinstance(spec, MatchKey):
        return spec
    if isinstance(spec, str):
        return MatchKey(spec, MatchType.EXACT)
    field, match_type = spec
    return MatchKey(field, MatchType(match_type))


class ProgramBuilder:
    """Accumulates nodes, then produces a validated :class:`Program`."""

    def __init__(self, name: str = "program"):
        self._program = Program(name=name)
        self._pending_chain: list[str] = []

    # -- nodes ---------------------------------------------------------------

    def table(
        self,
        name: str,
        keys: Sequence[KeySpec],
        actions: Sequence[Action],
        default_action: Optional[str] = None,
        next_node: Optional[str] = None,
        next_map: Optional[dict[str, Optional[str]]] = None,
        size: int = 1024,
        kind: TableKind = TableKind.PLAIN,
        pipeline: Pipeline = Pipeline.ASIC,
        cache_info: Optional[CacheInfo] = None,
        annotations: Optional[dict[str, Any]] = None,
    ) -> "ProgramBuilder":
        """Add a table. ``next_node`` routes all actions to one place;
        ``next_map`` overrides per action (making it a switch-case table).
        """
        if not actions:
            raise IrError(f"Table {name!r} needs at least one action")
        action_map = {a.name: a for a in actions}
        if len(action_map) != len(actions):
            raise IrError(f"Table {name!r} has duplicate action names")
        default = default_action or actions[-1].name
        full_next: dict[str, Optional[str]] = {
            a.name: next_node for a in actions
        }
        if next_map:
            full_next.update(next_map)
        self._program.add(
            TableNode(
                name=name,
                keys=tuple(_coerce_key(k) for k in keys),
                actions=action_map,
                default_action=default,
                next_map=full_next,
                size=size,
                kind=kind,
                pipeline=pipeline,
                cache_info=cache_info,
                annotations=dict(annotations or {}),
            )
        )
        return self

    def conditional(
        self,
        name: str,
        condition: Condition,
        true_next: Optional[str],
        false_next: Optional[str],
        pipeline: Pipeline = Pipeline.ASIC,
    ) -> "ProgramBuilder":
        self._program.add(
            ConditionalNode(
                name=name,
                condition=condition,
                true_next=true_next,
                false_next=false_next,
                pipeline=pipeline,
            )
        )
        return self

    # -- conveniences ----------------------------------------------------------

    def exact_table(
        self,
        name: str,
        field: str = "ipv4.dst",
        n_actions: int = 2,
        n_primitives: int = 1,
        next_node: Optional[str] = None,
        size: int = 1024,
        **kwargs: Any,
    ) -> "ProgramBuilder":
        """A simple exact table with ``n_actions`` no-op-style actions."""
        actions = [
            noop_action(f"{name}_a{i}", n_primitives)
            for i in range(max(1, n_actions))
        ]
        return self.table(
            name, [field], actions, next_node=next_node, size=size, **kwargs
        )

    def acl_table(
        self,
        name: str,
        field: str = "ipv4.src",
        next_node: Optional[str] = None,
        size: int = 1024,
        **kwargs: Any,
    ) -> "ProgramBuilder":
        """An ACL-style table: matched packets drop, others continue."""
        actions = [drop_action(f"{name}_deny"), noop_action(f"{name}_permit")]
        annotations = dict(kwargs.pop("annotations", {}))
        annotations.setdefault("role", "acl")
        return self.table(
            name,
            [field],
            actions,
            default_action=f"{name}_permit",
            next_node=next_node,
            size=size,
            annotations=annotations,
            **kwargs,
        )

    def chain(self, names: Iterable[str]) -> "ProgramBuilder":
        """Link already-added nodes into a linear chain, in order.

        Only rewrites ``None`` next pointers, so per-action routing set up
        through ``next_map`` is preserved.
        """
        names = list(names)
        for current, nxt in zip(names, names[1:]):
            node = self._program.node(current)
            if isinstance(node, TableNode):
                for action_name, target in node.next_map.items():
                    if target is None:
                        node.next_map[action_name] = nxt
            else:
                if node.true_next is None:
                    node.true_next = nxt
                if node.false_next is None:
                    node.false_next = nxt
        return self

    def set_next(self, name: str, target: Optional[str]) -> "ProgramBuilder":
        """Point every outgoing edge of ``name`` at ``target``."""
        node = self._program.node(name)
        if isinstance(node, TableNode):
            for action_name in node.next_map:
                node.next_map[action_name] = target
        else:
            node.true_next = target
            node.false_next = target
        return self

    def build(self, root: Optional[str] = None) -> Program:
        from repro.ir.validate import validate_program

        if root is not None:
            if root not in self._program:
                raise IrError(f"Root {root!r} was never added")
            self._program.root = root
        validate_program(self._program)
        return self._program


def linear_program(
    name: str,
    n_tables: int,
    match_type: MatchType = MatchType.EXACT,
    n_actions: int = 2,
    n_primitives: int = 1,
    field_prefix: str = "ipv4.f",
    size: int = 1024,
) -> Program:
    """A straight chain of ``n_tables`` identical tables.

    This is the calibration-suite building block from §3.1 (programs with
    varying length, match types, and action-primitive counts).
    """
    builder = ProgramBuilder(name)
    names = [f"{name}_t{i}" for i in range(n_tables)]
    for i, table_name in enumerate(names):
        actions = [
            noop_action(f"{table_name}_a{j}", n_primitives)
            for j in range(max(1, n_actions))
        ]
        builder.table(
            table_name,
            [(f"{field_prefix}{i}", match_type)],
            actions,
            size=size,
        )
    builder.chain(names)
    return builder.build(root=names[0] if names else None)
