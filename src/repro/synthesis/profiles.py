"""Runtime-profile synthesis (§5.2.2's "runtime profile synthesizer").

Generates random but internally-consistent profiles for a program:
random branch probabilities, random action distributions (hence drop
rates), random entry counts and update rates. Used by Figures 10, 13,
14, 18, 19 which evaluate the optimizer over thousands of profiles.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.costmodel import CostModel
from repro.core.hotspots import traffic_entropy
from repro.core.pipelets import Pipelet, partition
from repro.core.profiling import RuntimeProfile
from repro.ir.program import Program
from repro.ir.tables import TableKind


def synthesize_profile(
    program: Program,
    seed: int = 0,
    drop_bias: float = 0.0,
    hit_bias: float = 0.5,
    max_entries: int = 256,
    max_update_rate: float = 10.0,
    offered_pps: float = 1e6,
) -> RuntimeProfile:
    """One random profile.

    ``drop_bias`` skews traffic towards dropping actions (heavy-drop
    workloads); ``hit_bias`` sets how much probability mass installed
    entries capture vs the default action (static-table workloads want
    this high).
    """
    rng = random.Random(seed)
    profile = RuntimeProfile(offered_pps=offered_pps)
    for table in program.tables():
        if table.kind is not TableKind.PLAIN:
            continue
        weights: dict[str, float] = {}
        for name, action in table.actions.items():
            weight = rng.random()
            if action.drops:
                weight *= 1.0 + 3.0 * drop_bias
            if name == table.default_action:
                weight *= 2.0 * (1.0 - hit_bias) + 0.05
            weights[name] = weight + 1e-6
        profile.set_action_probs(table.name, weights)
        profile.entry_counts[table.name] = rng.randint(1, max_entries)
        profile.update_rates[table.name] = (
            rng.random() * max_update_rate
        )
    for conditional in program.conditionals():
        profile.branch_probs[conditional.name] = rng.random()
    return profile


def synthesize_profiles(
    program: Program,
    count: int,
    base_seed: int = 0,
    **kwargs,
) -> list[RuntimeProfile]:
    return [
        synthesize_profile(program, seed=base_seed + i, **kwargs)
        for i in range(count)
    ]


def profiles_by_entropy(
    program: Program,
    profiles: Sequence[RuntimeProfile],
    model: CostModel,
    percentiles: Sequence[float] = (10.0, 50.0, 90.0),
    pipelets: Optional[Sequence[Pipelet]] = None,
) -> list[tuple[float, float, RuntimeProfile]]:
    """Pick the profiles at the given entropy percentiles (§5.4.3).

    Returns ``(percentile, entropy, profile)`` rows sorted by percentile.
    """
    if pipelets is None:
        pipelets = partition(program)
    scored = sorted(
        (
            traffic_entropy(program, pipelets, profile, model),
            index,
        )
        for index, profile in enumerate(profiles)
    )
    rows = []
    for percentile in percentiles:
        position = min(
            len(scored) - 1,
            max(0, int(round(percentile / 100.0 * (len(scored) - 1)))),
        )
        entropy, index = scored[position]
        rows.append((percentile, entropy, profiles[index]))
    return rows
