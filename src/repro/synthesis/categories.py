"""The three workload categories of Figure 10.

"programs with heavy packet drops, programs composed of small static
tables, and programs with high traffic locality" — each restricted to a
single pipelet, with a matching synthesized profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.profiling import RuntimeProfile
from repro.ir.program import Program
from repro.synthesis.generator import (
    ProgramSynthesizer,
    SynthesisConfig,
)
from repro.synthesis.profiles import synthesize_profile

CATEGORIES = ("heavy_drop", "small_static", "high_locality")


@dataclass(frozen=True)
class CategoryCase:
    """One synthesized (program, profile) pair of a category."""

    category: str
    pipelet_len: tuple[int, int]
    program: Program
    profile: RuntimeProfile


def _program(
    seed: int,
    pipelet_len: tuple[int, int],
    drop_fraction: float,
    complex_fraction: float,
) -> Program:
    config = SynthesisConfig(
        n_pipelets=1,  # Fig. 10 restricts programs to one pipelet
        pipelet_len_min=pipelet_len[0],
        pipelet_len_max=pipelet_len[1],
        drop_table_fraction=drop_fraction,
        lpm_fraction=complex_fraction / 2,
        ternary_fraction=complex_fraction / 2,
        seed=seed,
    )
    return ProgramSynthesizer(config).generate()


def make_case(
    category: str,
    pipelet_len: tuple[int, int],
    seed: int = 0,
) -> CategoryCase:
    if category == "heavy_drop":
        # A couple of heavy droppers per program (if every table drops
        # half the traffic, the baseline already sheds load early and
        # reordering has nothing left to win).
        program = _program(seed, pipelet_len, 0.4, 0.2)
        profile = synthesize_profile(
            program,
            seed=seed,
            drop_bias=1.0,
            hit_bias=0.5,
            max_update_rate=0.2,
        )
    elif category == "small_static":
        program = _program(seed, pipelet_len, 0.0, 0.1)
        profile = synthesize_profile(
            program,
            seed=seed,
            drop_bias=0.0,
            hit_bias=0.95,
            max_entries=8,
            max_update_rate=0.01,
        )
    elif category == "high_locality":
        # Complex (LPM/ternary) matches make caching worthwhile; the
        # locality itself shows up as a high expected cache hit rate.
        program = _program(seed, pipelet_len, 0.05, 0.9)
        # High-locality flows imply stable rule sets (low churn).
        profile = synthesize_profile(
            program,
            seed=seed,
            drop_bias=0.0,
            hit_bias=0.6,
            max_update_rate=0.02,
        )
    else:
        raise ValueError(f"Unknown category {category!r}")
    return CategoryCase(category, pipelet_len, program, profile)


def make_corpus(
    category: str,
    pipelet_len: tuple[int, int],
    count: int,
    base_seed: int = 0,
) -> list[CategoryCase]:
    return [
        make_case(category, pipelet_len, seed=base_seed + i)
        for i in range(count)
    ]
