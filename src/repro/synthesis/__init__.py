"""Random program and profile synthesis for the corpus experiments."""

from repro.synthesis.categories import (
    CATEGORIES,
    CategoryCase,
    make_case,
    make_corpus,
)
from repro.synthesis.generator import (
    ProgramSynthesizer,
    SynthesisConfig,
    synthesize_corpus,
)
from repro.synthesis.profiles import (
    profiles_by_entropy,
    synthesize_profile,
    synthesize_profiles,
)

__all__ = [
    "CATEGORIES",
    "CategoryCase",
    "ProgramSynthesizer",
    "SynthesisConfig",
    "make_case",
    "make_corpus",
    "profiles_by_entropy",
    "synthesize_corpus",
    "synthesize_profile",
    "synthesize_profiles",
]
