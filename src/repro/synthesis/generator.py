"""Random P4 program synthesis (the paper's Gauntlet-based tool [50]).

Generates DAG programs with controllable *pipelet number* (PN) and
*pipelet length* (PL) — the two parameters Figures 13-15 sweep. The
generator alternates conditional branches with linear table runs so the
pipelet partitioner recovers approximately the requested shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.ir.actions import Action, drop_action, noop_action, prim
from repro.ir.builder import ProgramBuilder
from repro.ir.conditionals import Condition
from repro.ir.program import Program
from repro.ir.tables import MatchType

#: Field pool for random match keys (each table draws a distinct one so
#: runs stay dependency-free and reorderable unless add_dependencies).
FIELD_POOL = [f"hdr.f{i}" for i in range(64)]
BRANCH_FIELDS = ["ipv4.tos", "eth.type", "l4.dport", "ipv4.proto"]


@dataclass
class SynthesisConfig:
    """Shape parameters for one random program."""

    n_pipelets: int = 8
    pipelet_len_min: int = 2
    pipelet_len_max: int = 3
    drop_table_fraction: float = 0.2
    lpm_fraction: float = 0.1
    ternary_fraction: float = 0.1
    n_actions: int = 2
    max_primitives: int = 3
    dependency_fraction: float = 0.0
    #: When True, each branch diamond reconverges into a linear join
    #: run before the next branch (the Figure 8 group shape); when
    #: False, diamonds chain directly into the next conditional.
    join_runs: bool = False
    seed: int = 0


class ProgramSynthesizer:
    """Deterministic (seeded) random program generator."""

    def __init__(self, config: Optional[SynthesisConfig] = None):
        self.config = config or SynthesisConfig()
        self._rng = random.Random(self.config.seed)
        self._table_index = 0

    def _match_type(self) -> MatchType:
        roll = self._rng.random()
        if roll < self.config.lpm_fraction:
            return MatchType.LPM
        if roll < self.config.lpm_fraction + self.config.ternary_fraction:
            return MatchType.TERNARY
        return MatchType.EXACT

    def _table(
        self,
        builder: ProgramBuilder,
        run_fields: list[str],
    ) -> str:
        name = f"syn_t{self._table_index}"
        self._table_index += 1
        field = self._rng.choice(FIELD_POOL)
        actions: list[Action] = []
        can_drop = self._rng.random() < self.config.drop_table_fraction
        if can_drop:
            actions.append(drop_action(f"{name}_deny"))
        for j in range(self.config.n_actions):
            n_prims = self._rng.randint(1, self.config.max_primitives)
            if (
                run_fields
                and self._rng.random() < self.config.dependency_fraction
            ):
                # Write a field a previous table in the run matches on,
                # creating a real dependency.
                target = self._rng.choice(run_fields)
                primitives = tuple(
                    prim("set_field", target, j)
                    for _ in range(n_prims)
                )
                actions.append(Action(f"{name}_a{j}", primitives))
            else:
                actions.append(noop_action(f"{name}_a{j}", n_prims))
        builder.table(
            name,
            [(field, self._match_type())],
            actions,
            default_action=actions[-1].name,
        )
        run_fields.append(field)
        return name

    def _linear_run(self, builder: ProgramBuilder, length: int) -> list[str]:
        run_fields: list[str] = []
        names = [
            self._table(builder, run_fields) for _ in range(length)
        ]
        builder.chain(names)
        return names

    def generate(self) -> Program:
        """Build one program of roughly the configured PN x PL shape.

        Layout: a head run, then a spine of branch diamonds — each
        conditional splits into one or two runs that reconverge at the
        next conditional (or the sink). The pipelet partitioner recovers
        one pipelet per run.
        """
        config = self.config
        builder = ProgramBuilder(f"synthetic_{config.seed}")
        runs: list[list[str]] = []
        for _ in range(max(1, config.n_pipelets)):
            length = self._rng.randint(
                config.pipelet_len_min, config.pipelet_len_max
            )
            runs.append(self._linear_run(builder, length))

        stride = 3 if config.join_runs else 2
        cells: list[tuple[list[str], Optional[list[str]],
                          Optional[list[str]]]] = []
        index = 1
        while index < len(runs):
            true_run = runs[index]
            false_run = (
                runs[index + 1] if index + 1 < len(runs) else None
            )
            join_run = (
                runs[index + 2]
                if config.join_runs and index + 2 < len(runs)
                else None
            )
            cells.append((true_run, false_run, join_run))
            index += stride

        branch_names = [f"syn_br{j}" for j in range(len(cells))]
        for j, (true_run, false_run, join_run) in enumerate(cells):
            next_branch = (
                branch_names[j + 1] if j + 1 < len(cells) else None
            )
            reconverge = join_run[0] if join_run else next_branch
            builder.conditional(
                branch_names[j],
                Condition(
                    self._rng.choice(BRANCH_FIELDS),
                    "eq",
                    self._rng.randint(0, 3),
                ),
                true_next=true_run[0],
                false_next=(false_run[0] if false_run else reconverge),
            )
            builder.set_next(true_run[-1], reconverge)
            if false_run is not None:
                builder.set_next(false_run[-1], reconverge)
            if join_run is not None:
                builder.set_next(join_run[-1], next_branch)
        builder.set_next(
            runs[0][-1], branch_names[0] if branch_names else None
        )
        return builder.build(root=runs[0][0])


def synthesize_corpus(
    n_programs: int,
    n_pipelets: int,
    pipelet_len_min: int,
    pipelet_len_max: int,
    base_seed: int = 0,
    **kwargs,
) -> list[Program]:
    """A corpus of programs for one (PN, PL) experiment group."""
    programs = []
    for i in range(n_programs):
        config = SynthesisConfig(
            n_pipelets=n_pipelets,
            pipelet_len_min=pipelet_len_min,
            pipelet_len_max=pipelet_len_max,
            seed=base_seed + i,
            **kwargs,
        )
        programs.append(ProgramSynthesizer(config).generate())
    return programs
