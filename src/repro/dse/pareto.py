"""Pareto-front extraction over run-database records.

The sweep's output is multi-objective — the paper's Equation 5 trades
latency against memory and control-update budgets — so a single ranking
hides the interesting configs. We report the non-dominated set over
(measured latency, predicted memory, predicted update rate) by default;
objectives are dotted paths into the record so callers can front any
recorded quantity (e.g. ``measured.p99_latency_ns``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class Objective:
    """One axis of the front: a dotted record path and a direction."""

    key: str
    sense: str = "min"

    def __post_init__(self) -> None:
        if self.sense not in ("min", "max"):
            raise ValueError(f"sense must be min|max, got {self.sense!r}")

    def value(self, record: Mapping) -> float:
        node = record
        for part in self.key.split("."):
            node = node[part]
        return float(node)


DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective("measured.mean_latency_ns", "min"),
    Objective("predicted.memory_bytes", "min"),
    Objective("predicted.update_pps", "min"),
)


def objective_vector(
    record: Mapping, objectives: Sequence[Objective] = DEFAULT_OBJECTIVES
) -> tuple[float, ...]:
    """The record's objective values, normalised to minimisation."""
    return tuple(
        obj.value(record) if obj.sense == "min" else -obj.value(record)
        for obj in objectives
    )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when minimisation vector ``a`` Pareto-dominates ``b``."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    records: Sequence[Mapping],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> tuple[list[Mapping], list[Mapping]]:
    """Split records into (non-dominated front, dominated rest).

    Both lists preserve input (matrix) order. Duplicate objective
    vectors all land on the front — neither strictly dominates the
    other — which keeps the front stable under re-runs.
    """
    vectors = [objective_vector(r, objectives) for r in records]
    front: list[Mapping] = []
    dominated: list[Mapping] = []
    for i, record in enumerate(records):
        if any(
            dominates(vectors[j], vectors[i])
            for j in range(len(records))
            if j != i
        ):
            dominated.append(record)
        else:
            front.append(record)
    return front, dominated
