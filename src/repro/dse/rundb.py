"""Append-only JSONL run database for sweeps.

One line per completed cell, written compact with sorted keys and
fsynced, keyed by the cell's config fingerprint. Because cells always
append in matrix order and every record is a pure function of
(spec, seed) apart from its ``wall``/``host`` stamps, a sweep that is
killed mid-run leaves a valid *prefix*: re-invoking with the same spec
skips fingerprint-complete cells and appends the remainder, yielding a
file byte-identical (modulo the wall-clock fields) to an uninterrupted
run.

A kill can tear the final append mid-write. Each record is written as
one sequential ``json + "\\n"`` write, so a tear always manifests as a
file that does not end in a newline — :meth:`RunDatabase.load` repairs
that by truncating back to the last newline (the torn cell simply
re-runs). An unparsable *newline-terminated* line cannot come from a
torn append; that is real corruption and raises.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Record keys that vary run-to-run on purpose (timing stamps). Strip
#: these before comparing databases for bit-identity.
VOLATILE_KEYS = ("wall",)


class RunDatabaseError(ValueError):
    """The database has a bad record that is not a torn tail."""


class RunDatabase:
    """Fingerprint-keyed append-only JSONL store."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        #: True when the last load repaired a torn final append.
        self.repaired_tail = False

    # -- reading ------------------------------------------------------------

    def load(self) -> dict[str, dict]:
        """All complete records, fingerprint -> record (file order)."""
        self.repaired_tail = False
        if not self.path.exists():
            return {}
        raw = self.path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            # Interrupted append: even if the tail happens to parse,
            # a missing newline means the write never completed —
            # keep the record and the next append would glue onto the
            # same line. Drop it; the owning cell re-runs.
            cut = raw.rfind(b"\n") + 1
            with open(self.path, "r+b") as handle:
                handle.truncate(cut)
            raw = raw[:cut]
            self.repaired_tail = True
        records: dict[str, dict] = {}
        for lineno, line in enumerate(raw.split(b"\n"), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                fingerprint = record["fingerprint"]
            except (ValueError, KeyError, TypeError):
                raise RunDatabaseError(
                    f"{self.path}:{lineno}: unparsable record (not a "
                    "torn tail) — refusing to resume from a corrupt db"
                ) from None
            records[fingerprint] = record
        return records

    def records(self) -> list[dict]:
        return list(self.load().values())

    # -- writing ------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (compact sorted JSON + newline)."""
        if "fingerprint" not in record:
            raise ValueError("run-db records need a 'fingerprint'")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(line.encode() + b"\n")
            handle.flush()
            os.fsync(handle.fileno())


def strip_volatile(record: dict) -> dict:
    """Record minus the wall-clock fields, for bit-identity checks."""
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}
