"""Execute sweep cells and persist them to the run database.

Each cell is one self-contained experiment: build the program (example
app or synthesized), optionally optimize it under the cell's budgets,
deploy through :class:`~repro.core.controller.PipeleonController` (which
owns the engine-tier / sharded-runtime / transport plumbing), replay the
cell's seeded traffic, then record the cost model's prediction next to
the measured telemetry. Everything recorded except the ``wall`` block is
a pure function of (spec, seed), which is what makes resumed sweeps
bit-identical.

``run_sweep`` skips cells whose fingerprint is already in the database,
then executes the remainder — serially, or across a fork-context
:class:`~concurrent.futures.ProcessPoolExecutor`. The pool *must* be
fork-based and non-daemonic: cells with ``jobs > 1`` fork their own
shard workers, which daemonic ``multiprocessing.Pool`` workers may not
do. Results append strictly in matrix order (``executor.map`` preserves
it) so an interrupted database is always a prefix of the full one.
"""

from __future__ import annotations

import math
import multiprocessing
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Callable, Optional

from .hostinfo import host_metadata
from .matrix import Cell, enumerate_cells
from .rundb import RunDatabase
from .spec import SweepSpec

#: Bump when the record layout changes incompatibly.
RECORD_SCHEMA = 1


def build_cell_program(config: dict, sweep_seed: int):
    """(program, install_entries | None) for one cell config.

    Synthesized programs are seeded from the sweep seed plus only the
    shape knobs, so cells differing in runtime knobs exercise the
    *same* program — the same controlled-comparison rule the traffic
    seed follows (see :mod:`repro.dse.matrix`).
    """
    if config["app"] == "synth":
        from repro.synthesis import ProgramSynthesizer, SynthesisConfig

        pn, pl = config["synth_pn"], config["synth_pl"]
        seed = random.Random(
            f"dse:{sweep_seed}:synth:{pn}:{pl}"
        ).randrange(2**31)
        synth = SynthesisConfig(
            n_pipelets=pn,
            pipelet_len_min=pl,
            pipelet_len_max=pl,
            seed=seed,
        )
        return ProgramSynthesizer(synth).generate(), None
    from repro.apps import EXAMPLE_APPS

    build, install = EXAMPLE_APPS[config["app"]]
    return build(), install


def run_cell(cell: Cell, sweep_seed: int, spec_name: str) -> dict:
    """Execute one cell and return its run-database record."""
    from repro.core import (
        Pipeleon,
        PipeleonController,
        ResourceBudget,
    )
    from repro.core.search import SearchOptions
    from repro.nic.targets import get_target
    from repro.traffic.flows import synth_flows
    from repro.traffic.generator import TrafficGenerator

    config = cell.config
    target = get_target(config["target"])
    program, install = build_cell_program(config, sweep_seed)

    budget = ResourceBudget(
        memory_bytes=(
            config["memory_budget"]
            if config["memory_budget"] is not None
            else math.inf
        ),
        update_pps=(
            config["update_budget"]
            if config["update_budget"] is not None
            else math.inf
        ),
    )
    search = SearchOptions(
        k=config["topk"], cache_capacity=config["cache_capacity"]
    )
    plan = None
    if config["optimize"]:
        plan = Pipeleon(target, budget=budget, search=search).optimize(
            program
        )

    controller = PipeleonController(
        program,
        target,
        budget=budget,
        search=search,
        baseline_plan=plan,
        enabled=False,  # one static config per cell; no mid-replay replans
        jobs=config["jobs"],
        transport=config["transport"],
        engine=config["engine"],
    )
    try:
        if install is not None:
            install(controller.control_plane)
        generator = TrafficGenerator(seed=cell.seed)
        packets = generator.stream(
            synth_flows(config["flows"]),
            config["packets"],
            locality=config["locality"],
            zipf_skew=config["zipf_skew"],
        )
        start = time.perf_counter()
        stats = controller.deployment.replay(
            packets, batch=config["batch"]
        )
        wall_s = time.perf_counter() - start
        # profile() merges shard state home, so read counters after it.
        profile = controller.collect_profile()
        predicted = controller.model.predict(
            controller.deployment.program, profile, plan=plan
        )
        measured = stats.summary(target)
        measured["materialized_updates"] = float(
            sum(controller.deployment.materialized_updates.values())
        )
        if config["engine"] in ("auto", "columnar"):
            emulator = controller.deployment.emulator
            measured["columnar_packets"] = float(emulator.columnar_packets)
            measured["columnar_partitions"] = float(
                emulator.columnar_partitions
            )
            measured["columnar_demotions"] = float(
                sum(emulator.columnar_demotions.values())
            )
        snapshot = controller.cell_snapshot()
    finally:
        controller.deployment.close()

    return {
        "schema": RECORD_SCHEMA,
        "spec": spec_name,
        "cell": cell.index,
        "fingerprint": cell.fingerprint,
        "seed": cell.seed,
        "config": config,
        "snapshot": snapshot,
        "predicted": predicted.to_json(),
        "measured": measured,
        "wall": {"wall_s": wall_s},
    }


@dataclass(frozen=True)
class SweepResult:
    """What one ``run_sweep`` call did, plus the full record set."""

    spec: SweepSpec
    records: list  # every completed record for the spec, matrix order
    executed: int
    skipped: int
    remaining: int
    db_path: Path

    @property
    def complete(self) -> bool:
        return self.remaining == 0


def run_sweep(
    spec: SweepSpec,
    db_path,
    pool: int = 1,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[dict], None]] = None,
) -> SweepResult:
    """Run (or resume) a sweep, appending new cells to the database.

    ``max_cells`` caps how many *new* cells execute this invocation —
    the deterministic stand-in for a mid-sweep kill that the resume
    tests and the CI smoke job rely on.
    """
    cells = enumerate_cells(spec)
    db = RunDatabase(db_path)
    done = db.load()
    todo = [cell for cell in cells if cell.fingerprint not in done]
    skipped = len(cells) - len(todo)
    if max_cells is not None:
        todo = todo[:max_cells]

    host = host_metadata()
    worker = partial(
        run_cell, sweep_seed=spec.seed, spec_name=spec.name
    )
    if pool > 1 and len(todo) > 1:
        # Fork context: pool workers must be able to fork shard
        # workers of their own (jobs > 1 cells), which daemonic
        # multiprocessing.Pool processes cannot.
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(pool, len(todo)), mp_context=context
        ) as executor:
            results = executor.map(worker, todo)
            for record in results:  # map() preserves matrix order
                record["host"] = host
                db.append(record)
                if progress is not None:
                    progress(record)
    else:
        for cell in todo:
            record = worker(cell)
            record["host"] = host
            db.append(record)
            if progress is not None:
                progress(record)

    by_fingerprint = db.load()
    records = [
        by_fingerprint[cell.fingerprint]
        for cell in cells
        if cell.fingerprint in by_fingerprint
    ]
    return SweepResult(
        spec=spec,
        records=records,
        executed=len(todo),
        skipped=skipped,
        remaining=len(cells) - len(records),
        db_path=Path(db_path),
    )
