"""Cost-aware design-space exploration (ROADMAP item 4).

Spec -> matrix -> runner -> run database -> Pareto front:

* :mod:`repro.dse.spec` — declarative sweep specs (axes x base minus
  exclusions) with JSON round-trip and the ``smoke``/``pareto`` presets
* :mod:`repro.dse.matrix` — deterministic cell enumeration: pure
  config fingerprints, string-seeded traffic seeds
* :mod:`repro.dse.runner` — per-cell execution through the controller
  and parallel sweeps over a fork-based process pool
* :mod:`repro.dse.rundb` — append-only JSONL run database; resumable,
  torn-tail-repairing, bit-identical modulo wall-clock fields
* :mod:`repro.dse.pareto` — multi-objective non-dominated fronts
* :mod:`repro.dse.hostinfo` — host/git provenance stamped on records
"""

from repro.dse.hostinfo import git_sha, host_metadata
from repro.dse.matrix import (
    Cell,
    cell_fingerprint,
    cell_seed,
    enumerate_cells,
)
from repro.dse.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    dominates,
    objective_vector,
    pareto_front,
)
from repro.dse.rundb import (
    RunDatabase,
    RunDatabaseError,
    strip_volatile,
)
from repro.dse.runner import (
    SweepResult,
    build_cell_program,
    run_cell,
    run_sweep,
)
from repro.dse.spec import (
    CELL_DEFAULTS,
    PRESETS,
    Axis,
    SweepSpec,
    pareto_spec,
    preset_spec,
    smoke_spec,
    validate_config,
)

__all__ = [
    "Axis",
    "CELL_DEFAULTS",
    "Cell",
    "DEFAULT_OBJECTIVES",
    "Objective",
    "PRESETS",
    "RunDatabase",
    "RunDatabaseError",
    "SweepResult",
    "SweepSpec",
    "build_cell_program",
    "cell_fingerprint",
    "cell_seed",
    "dominates",
    "enumerate_cells",
    "git_sha",
    "host_metadata",
    "objective_vector",
    "pareto_front",
    "pareto_spec",
    "preset_spec",
    "run_cell",
    "run_sweep",
    "smoke_spec",
    "strip_volatile",
    "validate_config",
]
