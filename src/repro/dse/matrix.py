"""Deterministic cell enumeration for a sweep.

Two invariants make sweeps resumable and comparable:

* **Fingerprints are pure.** A cell's fingerprint is the SHA-256 of its
  normalised config plus the sweep seed (compact sorted JSON), so the
  same spec enumerates the same fingerprints on any host/process — the
  run database keys on them to skip completed cells.

* **Traffic seeds are controlled.** A cell's replay seed is derived
  (string-seeded, the `nic/faults.py` idiom — ``random.Random`` hashes
  string seeds with SHA-512, stable across processes and
  ``PYTHONHASHSEED``) from the sweep seed plus *only the
  traffic-shaping knobs* (app, packets, flows, locality, zipf_skew).
  Cells that differ only in runtime knobs — cache capacity, engine
  tier, budgets — replay the *identical* packet stream, so their
  measured numbers are a controlled comparison and Pareto dominance
  between them is meaningful rather than traffic noise.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Mapping

from .spec import SweepSpec

#: Config keys that shape the offered packet stream. Changing any other
#: key leaves the replayed traffic bit-identical.
TRAFFIC_KEYS = ("app", "packets", "flows", "locality", "zipf_skew")


def _compact(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cell_fingerprint(config: Mapping, sweep_seed: int) -> str:
    """16-hex-char identity of (config, sweep seed)."""
    blob = _compact({"config": dict(config), "seed": sweep_seed})
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def cell_seed(config: Mapping, sweep_seed: int) -> int:
    """Replay seed — a pure function of the traffic-shaping knobs."""
    tag = ":".join(str(config[key]) for key in TRAFFIC_KEYS)
    return random.Random(f"dse:{sweep_seed}:{tag}").randrange(2**31)


@dataclass(frozen=True)
class Cell:
    """One point of the matrix, ready to execute."""

    index: int
    config: dict
    fingerprint: str
    seed: int


def enumerate_cells(spec: SweepSpec) -> list[Cell]:
    """Materialise the matrix in spec order, fingerprinted and seeded."""
    return [
        Cell(
            index=index,
            config=config,
            fingerprint=cell_fingerprint(config, spec.seed),
            seed=cell_seed(config, spec.seed),
        )
        for index, config in enumerate(spec.cells())
    ]
