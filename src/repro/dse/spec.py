"""Declarative sweep specifications for design-space exploration.

A :class:`SweepSpec` names the parameter space ROADMAP item 4 asks to
search: target constants, flow-cache capacity, top-k, memory/update-rate
budgets, traffic mixes and Zipf skews, and the runtime's own knobs
(engine tier, transport, worker count). The spec is *composable data* —
axes times a base config minus exclusion rules — so it round-trips
through JSON (``repro dse --spec sweep.json``) and two invocations of
the same spec enumerate byte-identical cell lists.

Each cell is a full config dict: declared axes override ``base``, which
overrides :data:`CELL_DEFAULTS`. Validation is strict (unknown keys and
off-menu values fail at spec build time, not mid-sweep).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Mapping, Optional, Sequence

#: Every knob a cell may set, with its default. ``app`` is an
#: example-app name or ``"synth"`` (random program of ``synth_pn`` x
#: ``synth_pl`` shape); ``memory_budget``/``update_budget`` of ``None``
#: mean unconstrained (Equation 5 budgets disabled).
CELL_DEFAULTS: dict = {
    "app": "l2l3_acl",
    "target": "bluefield2",
    "engine": "auto",
    "transport": "shm",
    "jobs": 1,
    "packets": 4000,
    "flows": 128,
    "locality": "uniform",
    "zipf_skew": 1.2,
    "batch": 256,
    "optimize": True,
    "topk": 0.2,
    "cache_capacity": 4096,
    "memory_budget": None,
    "update_budget": None,
    "synth_pn": 6,
    "synth_pl": 2,
}

_TARGETS = ("bluefield2", "agilio_cx", "emulated_nic")
_ENGINES = ("auto", "columnar", "fastpath", "interp")
_TRANSPORTS = ("shm", "pipe")
_LOCALITIES = ("uniform", "zipf", "round_robin")


def _known_apps() -> tuple[str, ...]:
    from repro.apps import EXAMPLE_APPS

    return tuple(sorted(EXAMPLE_APPS)) + ("synth",)


def validate_config(config: Mapping) -> dict:
    """Normalise one cell config: defaults filled, values checked."""
    unknown = sorted(set(config) - set(CELL_DEFAULTS))
    if unknown:
        raise ValueError(f"Unknown cell keys: {', '.join(unknown)}")
    cell = {**CELL_DEFAULTS, **dict(config)}
    apps = _known_apps()
    checks = (
        ("app", apps),
        ("target", _TARGETS),
        ("engine", _ENGINES),
        ("transport", _TRANSPORTS),
        ("locality", _LOCALITIES),
    )
    for key, menu in checks:
        if cell[key] not in menu:
            raise ValueError(
                f"{key}={cell[key]!r} not one of {', '.join(menu)}"
            )
    for key in ("jobs", "packets", "flows", "batch"):
        if int(cell[key]) < 1:
            raise ValueError(f"{key} must be >= 1, got {cell[key]}")
        cell[key] = int(cell[key])
    for key in ("synth_pn", "synth_pl", "cache_capacity"):
        if int(cell[key]) < 1:
            raise ValueError(f"{key} must be >= 1, got {cell[key]}")
        cell[key] = int(cell[key])
    if not 0.0 < float(cell["topk"]) <= 1.0:
        raise ValueError(f"topk must be in (0, 1], got {cell['topk']}")
    cell["topk"] = float(cell["topk"])
    cell["zipf_skew"] = float(cell["zipf_skew"])
    cell["optimize"] = bool(cell["optimize"])
    for key in ("memory_budget", "update_budget"):
        if cell[key] is not None:
            cell[key] = float(cell[key])
            if cell[key] <= 0:
                raise ValueError(f"{key} must be > 0 or null")
    return cell


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a cell key and the values it takes."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if self.name not in CELL_DEFAULTS:
            raise ValueError(f"Unknown axis {self.name!r}")
        if not self.values:
            raise ValueError(f"Axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class SweepSpec:
    """Axes x base config, minus exclusion rules.

    ``exclude`` entries are partial configs: a cell matching *every*
    key of any rule is dropped (e.g. ``{"engine": "interp", "jobs":
    4}`` to skip the pointless interpreter fleet). Cells enumerate in
    row-major declaration order — the first axis varies slowest — so
    the cell list, and therefore the run database's append order, is a
    pure function of the spec.
    """

    name: str
    seed: int = 0
    axes: tuple[Axis, ...] = ()
    base: Mapping = field(default_factory=dict)
    exclude: tuple[Mapping, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "exclude", tuple(self.exclude))
        names = [axis.name for axis in self.axes]
        if len(names) != len(set(names)):
            raise ValueError(f"Duplicate axes in spec {self.name!r}")
        for rule in self.exclude:
            unknown = sorted(set(rule) - set(CELL_DEFAULTS))
            if unknown:
                raise ValueError(
                    f"Unknown exclude keys: {', '.join(unknown)}"
                )
        # Fail fast on bad base/axis values: validate one synthetic
        # cell per axis value instead of deferring to mid-sweep.
        for config in self._raw_cells():
            validate_config(config)

    def _raw_cells(self) -> Iterable[dict]:
        value_lists = [
            [(axis.name, value) for value in axis.values]
            for axis in self.axes
        ]
        for combo in product(*value_lists):
            yield {**dict(self.base), **dict(combo)}

    def _excluded(self, cell: Mapping) -> bool:
        return any(
            all(cell.get(key) == value for key, value in rule.items())
            for rule in self.exclude
        )

    def cells(self) -> list[dict]:
        """The normalised config dict of every cell, in matrix order."""
        return [
            cell
            for cell in map(validate_config, self._raw_cells())
            if not self._excluded(cell)
        ]

    # -- JSON round trip ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "axes": [
                {"name": axis.name, "values": list(axis.values)}
                for axis in self.axes
            ],
            "base": dict(self.base),
            "exclude": [dict(rule) for rule in self.exclude],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "SweepSpec":
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            axes=tuple(
                Axis(axis["name"], tuple(axis["values"]))
                for axis in data.get("axes", ())
            ),
            base=dict(data.get("base", {})),
            exclude=tuple(
                dict(rule) for rule in data.get("exclude", ())
            ),
        )

    @classmethod
    def load(cls, path: str) -> "SweepSpec":
        with open(path) as handle:
            return cls.from_json(json.load(handle))

    def with_seed(self, seed: int) -> "SweepSpec":
        return SweepSpec(
            name=self.name,
            seed=seed,
            axes=self.axes,
            base=self.base,
            exclude=self.exclude,
        )


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def smoke_spec(seed: int = 0) -> SweepSpec:
    """The CI 2x2x2 sweep: tiny cells, both cache extremes."""
    return SweepSpec(
        name="smoke",
        seed=seed,
        axes=(
            Axis("cache_capacity", (256, 4096)),
            Axis("locality", ("uniform", "zipf")),
            Axis("target", ("bluefield2", "emulated_nic")),
        ),
        base={"packets": 1500, "flows": 64},
    )


def pareto_spec(seed: int = 0) -> SweepSpec:
    """The 24-cell bench sweep behind ``BENCH_dse.json``.

    The ``cache_capacity`` axis spans 512 vs 4096 at 64 flows: both
    capacities hold every flow, so the pair replays identically (cells
    differing only in non-traffic knobs share a traffic seed — see
    :mod:`repro.dse.matrix`) and the 4096 cell predicts strictly more
    cache memory for the same latency and update rate. Every sweep
    therefore contains strictly dominated configurations, which is what
    the Pareto acceptance bar exercises.
    """
    return SweepSpec(
        name="pareto",
        seed=seed,
        axes=(
            Axis("app", ("l2l3_acl", "acl_chain", "nf_composition")),
            Axis("locality", ("uniform", "zipf")),
            Axis("cache_capacity", (512, 4096)),
            Axis("target", ("bluefield2", "emulated_nic")),
        ),
        base={"packets": 2000, "flows": 64},
    )


PRESETS = {
    "smoke": smoke_spec,
    "pareto": pareto_spec,
}


def preset_spec(name: str, seed: int = 0) -> SweepSpec:
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"Unknown preset {name!r} "
            f"(choose from {', '.join(sorted(PRESETS))})"
        ) from None
    return factory(seed)
