"""Host and git provenance recorded with benchmark and DSE results.

Perf JSONs and design-space-exploration run databases are compared
across PRs and machines; without a host fingerprint a regression is
indistinguishable from a slower machine, and without the git sha a
sweep result can't be traced back to the code that produced it. This is
the single source of truth: ``benchmarks/hostinfo.py`` re-exports it
for the ``BENCH_*.json`` writers, and :mod:`repro.dse.rundb` stamps the
same block on every run-database record.
"""

from __future__ import annotations

import os
import platform
import subprocess
from pathlib import Path
from typing import Optional

__all__ = ["git_sha", "host_metadata"]


def git_sha() -> Optional[str]:
    """HEAD commit of the repo this package lives in (None outside git).

    Appends ``-dirty`` when the working tree has uncommitted changes,
    so a sweep run against modified sources is never mistaken for the
    committed code's numbers.
    """
    cwd = Path(__file__).resolve().parent
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return f"{sha}-dirty" if dirty else sha


def host_metadata() -> dict:
    """Host facts recorded alongside benchmark and sweep numbers."""
    affinity = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count()
    )
    return {
        "cpu_count": os.cpu_count(),
        # CPUs this process may actually run on (cgroup/taskset aware);
        # wall-clock speedup gating keys off this, not cpu_count.
        "affinity": affinity,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
    }
