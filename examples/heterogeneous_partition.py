#!/usr/bin/env python3
"""Heterogeneous ASIC/CPU partitioning with table copying (§3.2.4, A.2).

A program interleaves ASIC-supported tables with tables whose actions
only CPU cores support. The naive partition migrates the packet at every
boundary; copying the sandwiched ASIC tables onto the CPU lets software-
bound packets finish there. We sweep the number of copied tables and
report per-packet latency and migrations on the BMv2-style emulator.

Run:  python examples/heterogeneous_partition.py
"""

from repro import EMULATED_NIC
from repro.apps import migration
from repro.core import Deployment
from repro.nic.packet import make_packet

N_PAIRS = 5


def main() -> None:
    print(f"{'copies':>7} {'migrations':>11} {'latency(ns)':>12}")
    for n_copies in range(0, N_PAIRS):
        program = migration.partitioned_program(N_PAIRS, n_copies)
        deployment = Deployment(
            program, EMULATED_NIC, instrument=False
        )
        stats = deployment.run([make_packet() for _ in range(200)])
        print(
            f"{n_copies:>7} "
            f"{stats.migrations / stats.packets:>11.1f} "
            f"{stats.mean_latency_ns:>12.0f}"
        )
    print(
        "\nMore copies -> fewer migrations; the latency win grows with"
        "\nthe migration cost and the share of software-bound traffic"
        "\n(see benchmarks/bench_fig17_migration.py for the full sweep)."
    )


if __name__ == "__main__":
    main()
