#!/usr/bin/env python3
"""DASH-style packet routing on the Agilio CX model (paper §5.3.2).

The pipeline (direction lookup, metadata setup, connection tracking,
three ACL levels, LPM routing) is incompatible with the NIC's native
whole-program flow cache because connection tracking is stateful. Pipe-
leon instead merges the small static metadata tables and reorders the
ACLs by measured drop rate, then — when the traffic shifts to long-lived
flows with even ACL drop rates — switches to caching the ACL run.

Run:  python examples/dash_offload.py
"""

from repro import AGILIO_CX, PipeleonController, ResourceBudget
from repro.apps import dash_routing
from repro.core.controller import ControllerOptions
from repro.core.search import SearchOptions
from repro.traffic import Scenario, TrafficGenerator, synth_flows
from repro.nic.packet import ipv4


def build_scenario(generator: TrafficGenerator) -> Scenario:
    flows = synth_flows(64)
    # Traffic the last ACL (dport) drops.
    deny_heavy = synth_flows(16, dport=6666)
    few_flows = synth_flows(6)  # long-lived flows: high locality

    def biased(n):
        return generator.mixed_stream(
            [(flows, 0.5), (deny_heavy, 0.5)], n
        )

    def long_lived(n):
        return generator.stream(few_flows, n, locality="zipf")

    return (
        Scenario("dash")
        .add_phase("biased-acl-drops", 30, biased)
        .add_phase("long-lived-flows", 30, long_lived)
    )


def main() -> None:
    program = dash_routing.build_program()
    controller = PipeleonController(
        program,
        AGILIO_CX,
        budget=ResourceBudget(memory_bytes=8_000_000, update_pps=2e4),
        search=SearchOptions(k=0.6, max_pipelet_len=10),
        options=ControllerOptions(profile_period_s=10.0),
        native_cache=False,  # conntrack breaks the native flow cache
    )
    dash_routing.install_base_entries(controller.control_plane)

    timeline = controller.run_scenario(
        build_scenario(TrafficGenerator(seed=11)),
        packets_per_tick=150,
    )
    print(f"{'t(s)':>5} {'Gbps':>7} {'phase':<20} plan")
    last_plan = None
    for point in timeline:
        show = point.plan if point.plan != last_plan else ""
        last_plan = point.plan
        print(
            f"{point.time_s:5.0f} {point.throughput_gbps:7.1f} "
            f"{point.phase:<20} {show}"
        )


if __name__ == "__main__":
    main()
