#!/usr/bin/env python3
"""Quickstart: optimize a P4 program for a SmartNIC in ~30 lines.

Builds a pipeline of four ternary tables (slow: each ternary lookup
costs several memory accesses), lets Pipeleon plan cache/merge/reorder
optimizations under a resource budget, and measures before/after
throughput on the emulated BlueField2.

Run:  python examples/quickstart.py
"""

from repro import Pipeleon, ResourceBudget, BLUEFIELD2
from repro.apps import microbench
from repro.core import Deployment
from repro.traffic import TrafficGenerator, synth_flows


def measure(deployment, packets):
    stats = deployment.run(packets)
    return stats.throughput_gbps(deployment.target)


def main() -> None:
    # 1. A program: two replicas of a 4-ternary-table pipelet.
    program = microbench.pipelet_benchmark_program(
        n_copies=2, n_actions=2
    )
    print(f"program: {len(program)} tables")

    # 2. Traffic: 500 packets over 64 flows (good locality for caching).
    generator = TrafficGenerator(seed=1)
    flows = synth_flows(64)
    packets = list(generator.stream(flows, 500, locality="zipf"))

    # 3. Baseline deployment: install entries, measure, profile.
    baseline = Deployment(program, BLUEFIELD2)
    microbench.install_ternary_mask_entries(
        baseline.control_plane, program, n_masks=8
    )
    base_gbps = measure(baseline, packets)
    profile = baseline.profile()

    # 4. Let Pipeleon pick the best plan within a memory budget.
    pipeleon = Pipeleon(
        BLUEFIELD2, budget=ResourceBudget(memory_bytes=2_000_000)
    )
    plan = pipeleon.optimize(program, profile)
    print(plan.describe())

    # 5. Redeploy optimized (same control plane state carries over).
    baseline.close()
    optimized = Deployment(
        program, BLUEFIELD2, plan=plan,
        control_plane=baseline.control_plane,
    )
    # Warm the caches, then measure.
    measure(optimized, packets)
    opt_gbps = measure(optimized, packets)

    print(f"baseline : {base_gbps:6.1f} Gbps")
    print(f"optimized: {opt_gbps:6.1f} Gbps "
          f"({opt_gbps / base_gbps:.2f}x)")


if __name__ == "__main__":
    main()
