#!/usr/bin/env python3
"""Hierarchical memory placement (the paper's §6 extension).

SmartNICs like the Agilio CX expose a memory hierarchy (external DRAM,
internal SRAM, local cluster memory); the stock compiler places every
P4 table in external memory. This extension lets Pipeleon promote the
hottest tables into faster tiers under a fast-memory budget.

Run:  python examples/memory_placement.py
"""

from repro import BLUEFIELD2, Pipeleon
from repro.core import Deployment, TierBudget, uniform_profile
from repro.ir import exact_entry, linear_program
from repro.nic.packet import make_packet

N_TABLES = 24


def measure(program, entries):
    deployment = Deployment(program, BLUEFIELD2, instrument=False)
    for table, rows in entries.items():
        deployment.insert_entries(table, (r.clone() for r in rows))
    stats = deployment.run([make_packet() for _ in range(80)])
    return stats.throughput_gbps(BLUEFIELD2)


def main() -> None:
    program = linear_program("mem", N_TABLES)
    entries = {
        f"mem_t{i}": [exact_entry(v, f"mem_t{i}_a0") for v in range(8)]
        for i in range(N_TABLES)
    }
    profile = uniform_profile(program)
    for name, rows in entries.items():
        profile.entry_counts[name] = len(rows)

    pipeleon = Pipeleon(BLUEFIELD2)
    baseline = measure(program, entries)

    # Budget for roughly a third of the tables in fast memory.
    total = sum(
        pipeleon.model.table_memory_bytes(t, profile)
        for t in program.tables()
    )
    plan = pipeleon.optimize_placement(
        program, profile, TierBudget(imem_bytes=total / 3)
    )
    print(plan.describe())
    placed = pipeleon.apply_placement(program, plan)
    optimized = measure(placed, entries)

    print(f"all tables in EMEM : {baseline:6.1f} Gbps")
    print(f"hot tables promoted: {optimized:6.1f} Gbps "
          f"({optimized / baseline:.2f}x)")


if __name__ == "__main__":
    main()
