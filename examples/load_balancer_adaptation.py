#!/usr/bin/env python3
"""Runtime adaptation: the load-balancer case study (paper §5.3.1).

A load balancer runs on the emulated BlueField2. Pipeleon initially
caches the whole pipeline (line rate). At t=16s the control plane
starts inserting backend entries at a high rate, invalidating the cache
constantly — Pipeleon notices the collapsed hit rate and removes the
cache. At t=32s the traffic mix shifts so the *second* ACL drops most
packets — Pipeleon reorders the ACLs.

Run:  python examples/load_balancer_adaptation.py
"""

from repro import BLUEFIELD2, PipeleonController, ResourceBudget
from repro.apps import load_balancer
from repro.core.controller import ControllerOptions
from repro.core.search import SearchOptions
from repro.traffic import Scenario, TrafficGenerator, synth_flows


def build_scenario(generator: TrafficGenerator) -> Scenario:
    flows = synth_flows(48, dport=80)
    deny_tos = [f.with_fields(**{"ipv4.tos": 1}) for f in flows[:8]]
    deny_port = synth_flows(16, dport=6666)

    def steady(n):
        return generator.mixed_stream(
            [(flows, 0.8), (deny_tos, 0.2)], n
        )

    burst_state = {"port": 40000}

    def insertion_burst(deployment, time_s):
        load_balancer.insertion_burst(
            deployment.control_plane, burst_state["port"], 40
        )
        burst_state["port"] += 40

    def acl2_heavy(n):
        return generator.mixed_stream(
            [(flows, 0.3), (deny_port, 0.7)], n
        )

    return (
        Scenario("load_balancer")
        .add_phase("steady", 16, steady)
        .add_phase("insertion-burst", 16, steady, insertion_burst)
        .add_phase("acl2-drops", 16, acl2_heavy)
    )


def main() -> None:
    program = load_balancer.build_program()
    controller = PipeleonController(
        program,
        BLUEFIELD2,
        budget=ResourceBudget(memory_bytes=4_000_000, update_pps=2e4),
        search=SearchOptions(k=0.5, max_pipelet_len=12),
        options=ControllerOptions(profile_period_s=5.0),
    )
    load_balancer.install_base_entries(controller.control_plane)
    # Let the initial configuration age out of the update-rate window
    # before traffic starts (it is not runtime churn).
    controller.clock.advance(controller.options.update_window_s)

    timeline = controller.run_scenario(
        build_scenario(TrafficGenerator(seed=7)), packets_per_tick=200
    )
    print(f"{'t(s)':>5} {'Gbps':>7} {'phase':<16} plan")
    for point in timeline:
        marker = " *reopt*" if point.reoptimized else ""
        print(
            f"{point.time_s:5.0f} {point.throughput_gbps:7.1f} "
            f"{point.phase:<16}{marker}"
        )
    print(f"\nreoptimizations: {controller.reoptimizations}")


if __name__ == "__main__":
    main()
